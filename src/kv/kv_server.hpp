// A mini-memcached server: protocol framing over a storage engine.
//
// handle() is the complete request path — parse, execute, format — so the
// Fig. 13-14 micro-benchmarks of this class measure the same cost structure
// memaslap measures against memcached: a fixed per-transaction cost (frame
// parse, dispatch, response assembly) plus a small per-key cost (hash
// lookup, value copy).
//
// BasicKvServer is generic over the engine: MemTable (byte-budget global
// LRU — the default, simple and predictable), SlabMemTable (memcached's
// slab classes with per-class LRU), or the sharded wrappers of either
// (striped locks, one LRU domain per shard). Request counters are relaxed
// atomics, so handle() is exactly as thread-safe as the engine underneath:
// with a sharded engine concurrent handle() calls are safe and scale; with
// a plain engine the caller serializes (the loopback transport's dispatch
// mutex, or the old single-dispatch TCP loop).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "kv/memtable.hpp"
#include "kv/protocol.hpp"
#include "kv/sharded_memtable.hpp"
#include "kv/slab_memtable.hpp"
#include "obs/metrics.hpp"
#include "obs/slow_log.hpp"
#include "obs/trace.hpp"

namespace rnb::kv {

/// Out-parameters a transport can ask handle() for. `trace` is the
/// request's propagated trace tag (absent for untagged frames), letting
/// the transport attribute its post-handle work — the socket write — to
/// the same trace the server spans joined.
struct HandleInfo {
  TraceTag trace;
};

/// Snapshot of a server's request counters (plain integers; the live
/// counters are relaxed atomics so concurrent handle() calls never race).
struct ServerCounters {
  std::uint64_t transactions = 0;
  std::uint64_t keys_requested = 0;
  std::uint64_t keys_returned = 0;
  std::uint64_t stores = 0;
  std::uint64_t deletes = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t scans = 0;
  std::uint64_t wrong_epoch = 0;
};

template <typename Store>
class BasicKvServer {
 public:
  /// Construct the underlying store from whatever it takes (byte budget for
  /// MemTable, SlabConfig for SlabMemTable, budget + shard count for
  /// ShardedMemTable).
  template <typename... StoreArgs>
  explicit BasicKvServer(StoreArgs&&... store_args)
      : table_(std::forward<StoreArgs>(store_args)...) {}

  /// Process one request frame, appending the response to `response`
  /// (cleared first). Never throws; malformed input yields CLIENT_ERROR.
  /// Safe to call concurrently iff the engine is (see the header comment).
  void handle(std::string_view request, std::string& response) {
    handle(request, response, nullptr);
  }

  /// handle() plus out-parameters for trace-aware transports. When a
  /// tracer is installed, the frame's trace tag (if any) is adopted as
  /// the ambient context and the request unfolds into server child spans:
  ///
  ///   transaction             child of the client span in the tag
  ///   ├─ parse                frame grammar -> Command
  ///   ├─ dispatch             shard routing + lock acquisition
  ///   │  └─ handle            the engine operation itself
  ///   └─ format               response assembly
  ///
  /// Untraced calls skip all of it: one static pointer load per seam.
  void handle(std::string_view request, std::string& response,
              HandleInfo* info) {
    response.clear();
    obs::Tracer* const tracer = obs::Tracer::current();
    counters_.transactions.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t parse_start = tracer != nullptr ? tracer->now() : 0;
    std::string error;
    const std::optional<Command> cmd = parse_command(request, &error);
    const std::uint64_t parse_end = tracer != nullptr ? tracer->now() : 0;
    const TraceTag trace = cmd ? command_trace(*cmd) : TraceTag{};
    if (info != nullptr) info->trace = trace;
    // Join the caller's trace: every span below becomes a child of the
    // client span named in the tag. Untagged frames trace locally rooted.
    obs::ScopedTraceContext adopt(
        {trace.trace_id, trace.span_id, trace.sampled});
    obs::SpanScope txn_span("transaction", "server");
    txn_span.set_start(parse_start);  // fold in the parse we just measured
    if (tracer != nullptr)
      tracer->complete(
          "parse", "server", parse_start, parse_end - parse_start,
          {{"bytes", static_cast<std::int64_t>(request.size())}});
    if (!cmd) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      txn_span.note("outcome", "protocol_error");
      encode_simple("CLIENT_ERROR " + error, response);
      return;
    }
    dispatch_command(*cmd, response, txn_span);
    if (tracer != nullptr)
      observe_latency(trace, tracer->now() - parse_start, *cmd);
  }

  ServerCounters counters() const noexcept { return counters_.snapshot(); }
  Store& table() noexcept { return table_; }
  const Store& table() const noexcept { return table_; }

  /// The server's ring epoch. 0 (the default) disables epoch checking
  /// entirely — a static fleet never answers WRONG_EPOCH. Nonzero, a
  /// command tagged with an *older* epoch is rejected with
  /// `WRONG_EPOCH <epoch>`; tags from a newer epoch serve (the client
  /// heard a committed ring this server hasn't been bumped to yet — its
  /// plan is the fresher one, and migration keeps both placements stocked
  /// until every member is bumped); untagged frames (migration traffic,
  /// legacy clients) always pass. Normally installed via the `epoch` verb.
  void set_epoch(std::uint64_t epoch) noexcept {
    epoch_.store(epoch, std::memory_order_relaxed);
  }
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Install a callback that contributes extra series to the `stats`
  /// exposition — the seam transports use to publish wire-level state
  /// (connection counts, accept errors) the engine can't see. Called with
  /// the throwaway per-request registry right before it is written out.
  /// Install before serving begins; the hook runs on whatever thread
  /// handles the stats frame and must be safe to call concurrently.
  void set_stats_hook(std::function<void(obs::MetricsRegistry&)> hook) {
    stats_hook_ = std::move(hook);
  }

 private:
  /// The engine's observability name, when it declares one.
  static constexpr const char* engine_name() noexcept {
    if constexpr (requires { Store::kEngineName; })
      return Store::kEngineName;
    else
      return nullptr;
  }

  /// True when the engine supports the batched per-shard read path.
  static constexpr bool kBatchedReads = requires(
      Store& t, std::span<const std::string> keys,
      std::vector<std::optional<typename Store::GetResult>>& out) {
    t.multi_get(keys, out);
  };
  /// True when the engine reports per-shard lock/eviction counters.
  static constexpr bool kShardMetrics = requires(const Store& t) {
    t.shard_count();
    t.shard_snapshot(0);
  };
  /// True when the engine routes keys to shards (dispatch spans can then
  /// carry the shard index a key resolved to).
  static constexpr bool kShardRouting =
      requires(const Store& t, std::string_view key) { t.shard_index(key); };
  /// True when the engine aggregates striped-lock contention counters.
  static constexpr bool kLockCounters =
      requires(const Store& t) { t.lock_counters(); };
  /// True when the engine can page through its entries (the migration
  /// `scan` verb). Slab engines can't; they answer SERVER_ERROR.
  static constexpr bool kScan =
      requires(const Store& t, std::vector<ScanEntry>& out) {
        t.scan(std::uint64_t{}, std::size_t{}, out);
      };

  /// Execute one parsed command. Spans (dispatch > handle, then format)
  /// only materialize when a tracer is installed.
  void dispatch_command(const Command& cmd, std::string& response,
                        obs::SpanScope& txn_span) {
    // Epoch gate: an epoch-tagged command planned against an *older* ring
    // than this server is configured for is answered WRONG_EPOCH instead of
    // executing against stale placement. Newer tags serve — the client is
    // ahead of this server's bump, not stale, and bouncing it would open
    // an availability hole between the controller's publish and its
    // per-server epoch sweep. Untagged frames always pass, and the `epoch`
    // verb itself must pass so the controller can fix the very mismatch
    // being reported.
    const std::uint64_t server_epoch =
        epoch_.load(std::memory_order_relaxed);
    const std::uint64_t cmd_epoch = command_epoch(cmd);
    if (cmd_epoch != 0 && server_epoch != 0 && cmd_epoch < server_epoch &&
        !std::holds_alternative<EpochCommand>(cmd)) {
      counters_.wrong_epoch.fetch_add(1, std::memory_order_relaxed);
      txn_span.note("outcome", "wrong_epoch");
      format_response(
          [&] { encode_wrong_epoch(server_epoch, response); }, response);
      return;
    }
    if (const auto* get = std::get_if<GetCommand>(&cmd)) {
      std::vector<Value> values;
      values.reserve(get->keys.size());
      counters_.keys_requested.fetch_add(get->keys.size(),
                                         std::memory_order_relaxed);
      {
        obs::SpanScope dispatch_span("dispatch", "server");
        annotate_dispatch(dispatch_span, get->keys);
        const std::uint64_t contended = contended_before(dispatch_span);
        {
          obs::SpanScope handle_span("handle", "server");
          if constexpr (kBatchedReads) {
            // Sharded engine: decompose the transaction into per-shard
            // sub-batches, one lock acquisition per involved shard, no
            // global ordering. Results come back positionally so the
            // response keeps request key order — byte-identical to the
            // sequential loop.
            std::vector<std::optional<typename Store::GetResult>> results;
            table_.multi_get(get->keys, results);
            for (std::size_t i = 0; i < get->keys.size(); ++i) {
              if (results[i])
                values.push_back(Value{get->keys[i],
                                       std::move(results[i]->value),
                                       results[i]->version});
            }
          } else {
            for (const std::string& key : get->keys) {
              if (auto hit = table_.get(key))
                values.push_back(
                    Value{key, std::move(hit->value), hit->version});
            }
          }
          handle_span.arg("keys",
                          static_cast<std::int64_t>(get->keys.size()));
          handle_span.arg("hits", static_cast<std::int64_t>(values.size()));
        }
        annotate_lock_wait(dispatch_span, contended);
      }
      counters_.keys_returned.fetch_add(values.size(),
                                        std::memory_order_relaxed);
      txn_span.arg("keys", static_cast<std::int64_t>(get->keys.size()));
      txn_span.arg("hits", static_cast<std::int64_t>(values.size()));
      format_response(
          [&] { encode_values(values, get->with_versions, response); },
          response);
      return;
    }
    if (std::holds_alternative<StatsCommand>(cmd)) {
      obs::SpanScope handle_span("handle", "server");
      write_stats(response);
      return;
    }
    if (const auto* set = std::get_if<SetCommand>(&cmd)) {
      counters_.stores.fetch_add(1, std::memory_order_relaxed);
      bool ok = false;
      {
        obs::SpanScope dispatch_span("dispatch", "server");
        annotate_dispatch(dispatch_span, std::span(&set->key, 1));
        const std::uint64_t contended = contended_before(dispatch_span);
        {
          obs::SpanScope handle_span("handle", "server");
          ok = table_.set(set->key, set->data, set->pin);
          handle_span.arg("bytes",
                          static_cast<std::int64_t>(set->data.size()));
        }
        annotate_lock_wait(dispatch_span, contended);
      }
      format_response(
          [&] {
            encode_simple(ok ? "STORED" : "SERVER_ERROR out of memory",
                          response);
          },
          response);
      return;
    }
    if (const auto* cas = std::get_if<CasCommand>(&cmd)) {
      counters_.stores.fetch_add(1, std::memory_order_relaxed);
      MemTable::CasOutcome outcome = MemTable::CasOutcome::kNotFound;
      {
        obs::SpanScope dispatch_span("dispatch", "server");
        annotate_dispatch(dispatch_span, std::span(&cas->key, 1));
        const std::uint64_t contended = contended_before(dispatch_span);
        {
          obs::SpanScope handle_span("handle", "server");
          outcome = table_.cas(cas->key, cas->version, cas->data);
        }
        annotate_lock_wait(dispatch_span, contended);
      }
      format_response(
          [&] {
            switch (outcome) {
              case MemTable::CasOutcome::kStored:
                encode_simple("STORED", response);
                break;
              case MemTable::CasOutcome::kExists:
                encode_simple("EXISTS", response);
                break;
              case MemTable::CasOutcome::kNotFound:
                encode_simple("NOT_FOUND", response);
                break;
            }
          },
          response);
      return;
    }
    if (const auto* scan = std::get_if<ScanCommand>(&cmd)) {
      counters_.scans.fetch_add(1, std::memory_order_relaxed);
      if constexpr (kScan) {
        std::vector<ScanEntry> entries;
        entries.reserve(scan->max_keys);
        std::uint64_t next = 0;
        {
          obs::SpanScope dispatch_span("dispatch", "server");
          obs::SpanScope handle_span("handle", "server");
          next = table_.scan(scan->cursor, scan->max_keys, entries);
          handle_span.arg("entries",
                          static_cast<std::int64_t>(entries.size()));
        }
        ScanPage page;
        page.next_cursor = next;
        page.entries.reserve(entries.size());
        for (ScanEntry& e : entries)
          page.entries.push_back(
              Value{std::move(e.key), std::move(e.value), e.version,
                    e.pinned ? kValueFlagPinned : 0u});
        txn_span.arg("entries",
                     static_cast<std::int64_t>(page.entries.size()));
        format_response([&] { encode_scan_page(page, response); }, response);
      } else {
        format_response(
            [&] { encode_simple("SERVER_ERROR scan unsupported", response); },
            response);
      }
      return;
    }
    if (const auto* ep = std::get_if<EpochCommand>(&cmd)) {
      obs::SpanScope handle_span("handle", "server");
      if (ep->set_epoch != 0) {
        epoch_.store(ep->set_epoch, std::memory_order_relaxed);
        txn_span.arg("epoch", static_cast<std::int64_t>(ep->set_epoch));
        format_response([&] { encode_simple("OK", response); }, response);
      } else {
        format_response(
            [&] {
              encode_simple("EPOCH " + std::to_string(epoch_.load(
                                           std::memory_order_relaxed)),
                            response);
            },
            response);
      }
      return;
    }
    if (const auto* del = std::get_if<DeleteCommand>(&cmd)) {
      counters_.deletes.fetch_add(1, std::memory_order_relaxed);
      bool erased = false;
      {
        obs::SpanScope dispatch_span("dispatch", "server");
        annotate_dispatch(dispatch_span, std::span(&del->key, 1));
        const std::uint64_t contended = contended_before(dispatch_span);
        {
          obs::SpanScope handle_span("handle", "server");
          erased = table_.erase(del->key);
        }
        annotate_lock_wait(dispatch_span, contended);
      }
      format_response(
          [&] { encode_simple(erased ? "DELETED" : "NOT_FOUND", response); },
          response);
      return;
    }
  }

  /// Run the encoder under a "format" span that reports response bytes.
  template <typename Encode>
  void format_response(Encode&& encode, std::string& response) {
    obs::SpanScope format_span("format", "server");
    encode();
    format_span.arg("bytes", static_cast<std::int64_t>(response.size()));
  }

  /// Dispatch-span routing annotation: the shard a single key resolves
  /// to, or the shard fan-out bound for a batch.
  template <typename Keys>
  void annotate_dispatch(obs::SpanScope& span,
                         const Keys& keys) const {
    if (!span.active()) return;
    if constexpr (kShardRouting) {
      if (keys.size() == 1)
        span.arg("shard",
                 static_cast<std::int64_t>(table_.shard_index(keys[0])));
      else
        span.arg("shards",
                 static_cast<std::int64_t>(table_.shard_count()));
    } else {
      (void)keys;
      span.arg("shard", 0);
    }
  }

  std::uint64_t contended_before(const obs::SpanScope& span) const {
    if constexpr (kLockCounters) {
      if (span.active())
        return table_.lock_counters().contended_acquisitions;
    }
    (void)span;
    return 0;
  }

  /// Attach the striped-lock contention delta observed across the engine
  /// call — the "how long did this request wait on locks" attribution the
  /// contention counters afford (acquisition counts, not wall time).
  void annotate_lock_wait(obs::SpanScope& span,
                          std::uint64_t contended_before_count) const {
    if constexpr (kLockCounters) {
      if (span.active())
        span.arg("lock_contended",
                 static_cast<std::int64_t>(
                     table_.lock_counters().contended_acquisitions -
                     contended_before_count));
    } else {
      (void)span;
      (void)contended_before_count;
    }
  }

  /// Traced-only tail attribution: handle latency histogram (exemplars
  /// link buckets to trace ids) and the server-side slow-transaction log,
  /// both exposed by the `stats` verb. Never touched without a tracer, so
  /// the untraced hot path stays mutex-free.
  void observe_latency(const TraceTag& trace, std::uint64_t elapsed,
                       const Command& cmd) {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    handle_latency_.record_traced(elapsed, trace.trace_id);
    obs::SlowRequest req;
    req.trace_id = trace.trace_id;
    req.cost = elapsed;
    req.transactions = 1;
    if (const auto* get = std::get_if<GetCommand>(&cmd))
      req.items = static_cast<std::uint32_t>(get->keys.size());
    else
      req.items = 1;
    // Correlation context: the ring epoch this server executed under and
    // the engine that served it, so a flight-recorder dump can line slow
    // covers up against migrations.
    req.epoch = epoch_.load(std::memory_order_relaxed);
    req.engine = engine_name();
    slow_log_.record(req);
  }

  struct AtomicCounters {
    std::atomic<std::uint64_t> transactions{0};
    std::atomic<std::uint64_t> keys_requested{0};
    std::atomic<std::uint64_t> keys_returned{0};
    std::atomic<std::uint64_t> stores{0};
    std::atomic<std::uint64_t> deletes{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> scans{0};
    std::atomic<std::uint64_t> wrong_epoch{0};

    ServerCounters snapshot() const noexcept {
      return {transactions.load(std::memory_order_relaxed),
              keys_requested.load(std::memory_order_relaxed),
              keys_returned.load(std::memory_order_relaxed),
              stores.load(std::memory_order_relaxed),
              deletes.load(std::memory_order_relaxed),
              protocol_errors.load(std::memory_order_relaxed),
              scans.load(std::memory_order_relaxed),
              wrong_epoch.load(std::memory_order_relaxed)};
    }
  };

  /// `stats` response: Prometheus text exposition (0.0.4) framed by a
  /// trailing "END\r\n". Built fresh per call — stats is a cold path and a
  /// throwaway registry keeps the hot counters plain relaxed increments.
  void write_stats(std::string& response) const {
    const ServerCounters snap = counters_.snapshot();
    obs::MetricsRegistry registry;
    registry
        .counter("rnb_kv_transactions_total",
                 "Request frames handled (stats included)")
        .inc(snap.transactions);
    registry
        .counter("rnb_kv_keys_requested_total",
                 "Keys asked for across all get/gets frames")
        .inc(snap.keys_requested);
    registry
        .counter("rnb_kv_keys_returned_total",
                 "Keys found and returned across all get/gets frames")
        .inc(snap.keys_returned);
    registry.counter("rnb_kv_stores_total", "set and cas frames handled")
        .inc(snap.stores);
    registry.counter("rnb_kv_deletes_total", "delete frames handled")
        .inc(snap.deletes);
    registry
        .counter("rnb_kv_protocol_errors_total",
                 "Frames rejected with CLIENT_ERROR")
        .inc(snap.protocol_errors);
    // Elastic-membership series appear only once touched, so a static
    // fleet's stats output stays byte-identical to the pre-elastic
    // exposition.
    if (snap.scans != 0)
      registry
          .counter("rnb_kv_scans_total", "Migration scan frames handled")
          .inc(snap.scans);
    const std::uint64_t epoch_now = epoch_.load(std::memory_order_relaxed);
    if (epoch_now != 0) {
      registry
          .gauge("rnb_kv_epoch", "Ring epoch this server is configured for")
          .set(static_cast<double>(epoch_now));
      registry
          .counter("rnb_kv_wrong_epoch_total",
                   "Epoch-tagged frames rejected with WRONG_EPOCH")
          .inc(snap.wrong_epoch);
    }
    registry.gauge("rnb_kv_entries", "Live entries in the store")
        .set(static_cast<double>(table_.entries()));
    if constexpr (kShardMetrics) {
      registry.gauge("rnb_kv_shards", "Store shards (striped lock domains)")
          .set(static_cast<double>(table_.shard_count()));
      for (std::size_t i = 0; i < table_.shard_count(); ++i) {
        const auto shard = table_.shard_snapshot(i);
        const std::string label =
            obs::format_label("shard", std::to_string(i));
        registry
            .counter("rnb_kv_shard_lock_acquisitions_total",
                     "Shard lock acquisitions (shared + exclusive)", label)
            .inc(shard.lock.total_acquisitions());
        registry
            .counter("rnb_kv_shard_lock_contended_total",
                     "Shard lock acquisitions that had to wait", label)
            .inc(shard.lock.contended_acquisitions);
        registry
            .counter("rnb_kv_shard_evictions_total",
                     "LRU evictions performed by the shard", label)
            .inc(shard.engine_stats.evictions);
        registry
            .gauge("rnb_kv_shard_entries", "Live entries in the shard",
                   label)
            .set(static_cast<double>(shard.entries));
        // Probe-behaviour series exist only for open-addressing engines
        // (the swiss table), so map/slab stats output is unchanged.
        if constexpr (requires { shard.has_probe; }) {
          if (shard.has_probe) {
            registry
                .counter("rnb_kv_shard_probe_groups_total",
                         "Control-byte groups examined across key lookups",
                         label)
                .inc(shard.probe.probe_groups);
            registry
                .counter("rnb_kv_shard_lookups_total",
                         "Key lookups that probed the table", label)
                .inc(shard.probe.finds);
            registry
                .gauge("rnb_kv_shard_probe_max_groups",
                       "Longest single lookup, in control groups", label)
                .set(static_cast<double>(shard.probe.max_probe_groups));
            registry
                .counter("rnb_kv_shard_insert_displacement_total",
                         "Groups stepped past home on inserts", label)
                .inc(shard.probe.insert_displacement);
            registry
                .counter("rnb_kv_shard_rehashes_total",
                         "Table rehashes (growth or tombstone purge)", label)
                .inc(shard.probe.rehashes);
            registry
                .gauge("rnb_kv_shard_tombstones",
                       "Current tombstoned slots", label)
                .set(static_cast<double>(shard.probe.tombstones));
            registry
                .counter("rnb_kv_shard_slab_fallbacks_total",
                         "Payloads served from the heap instead of the slab",
                         label)
                .inc(shard.probe.slab_fallbacks);
          }
        }
      }
    }
    // Traced-only attribution series. Both stay empty until a traced run
    // records something, so tracer-off stats output is byte-identical to
    // the pre-tracing exposition.
    {
      std::lock_guard<std::mutex> lock(latency_mutex_);
      if (!handle_latency_.empty()) {
        registry
            .histogram("rnb_kv_handle_latency_seconds",
                       "Traced handle() latency; exemplars link buckets to "
                       "trace ids",
                       "", 7, 1e6)
            .merge(handle_latency_);
      }
      const std::vector<obs::SlowRequest> slow = slow_log_.top();
      for (std::size_t rank = 0; rank < slow.size(); ++rank) {
        std::string labels =
            obs::format_label("rank", std::to_string(rank)) + "," +
            obs::format_label("trace_id", hex_string(slow[rank].trace_id));
        // Correlation labels appear only when recorded, so pre-elastic
        // and anonymous-engine expositions stay byte-identical.
        if (slow[rank].epoch != 0)
          labels += "," + obs::format_label(
                              "epoch", std::to_string(slow[rank].epoch));
        if (slow[rank].engine != nullptr)
          labels += "," + obs::format_label("engine", slow[rank].engine);
        registry
            .gauge("rnb_kv_slow_transaction_cost",
                   "Worst traced transactions by handle latency (tracer "
                   "time units), with the trace id to look up",
                   labels)
            .set(static_cast<double>(slow[rank].cost));
      }
    }
    if (stats_hook_) stats_hook_(registry);
    std::ostringstream os;
    registry.write_prometheus(os);
    response += os.str();
    encode_simple("END", response);
  }

  static std::string hex_string(std::uint64_t id) {
    char buf[17];
    std::size_t n = 0;
    do {
      buf[n++] = "0123456789abcdef"[id & 0xf];
      id >>= 4;
    } while (id != 0);
    std::string out;
    while (n != 0) out += buf[--n];
    return out;
  }

  Store table_;
  AtomicCounters counters_;
  std::atomic<std::uint64_t> epoch_{0};
  std::function<void(obs::MetricsRegistry&)> stats_hook_;
  // Traced-only attribution state (see observe_latency); a server-private
  // slow log, distinct from any process-wide obs::SlowLog the client side
  // installs.
  mutable std::mutex latency_mutex_;
  obs::Histogram handle_latency_{7};
  obs::SlowLog slow_log_{8};
};

/// Default engine: byte-budget global-LRU MemTable (single lock domain;
/// callers serialize).
using KvServer = BasicKvServer<MemTable>;

/// Memcached-faithful engine: slab classes with per-class LRU.
using SlabKvServer = BasicKvServer<SlabMemTable>;

/// Concurrent engine: sharded MemTable with striped locks — handle() is
/// thread-safe and scales with cores. One shard reproduces KvServer's
/// responses byte-for-byte.
using ShardedKvServer = BasicKvServer<ShardedMemTable>;

/// Concurrent memcached-faithful engine: sharded slab arenas.
using ShardedSlabKvServer = BasicKvServer<ShardedSlabMemTable>;

/// Open-addressing engine: swiss-table layout with slab-backed payloads.
/// Observably identical responses to KvServer for the same operation
/// sequence (the equivalence fuzz pins this).
using SwissKvServer = BasicKvServer<SwissMemTable>;

/// Concurrent swiss engine — the serving-path default candidate: sharded
/// swiss tables with hash-once routing and batched per-shard reads.
using ShardedSwissKvServer = BasicKvServer<ShardedSwissMemTable>;

}  // namespace rnb::kv
