// A mini-memcached server: protocol framing over a storage engine.
//
// handle() is the complete request path — parse, execute, format — so the
// Fig. 13-14 micro-benchmarks of this class measure the same cost structure
// memaslap measures against memcached: a fixed per-transaction cost (frame
// parse, dispatch, response assembly) plus a small per-key cost (hash
// lookup, value copy).
//
// BasicKvServer is generic over the engine: MemTable (byte-budget global
// LRU — the default, simple and predictable), SlabMemTable (memcached's
// slab classes with per-class LRU), or the sharded wrappers of either
// (striped locks, one LRU domain per shard). Request counters are relaxed
// atomics, so handle() is exactly as thread-safe as the engine underneath:
// with a sharded engine concurrent handle() calls are safe and scale; with
// a plain engine the caller serializes (the loopback transport's dispatch
// mutex, or the old single-dispatch TCP loop).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "kv/memtable.hpp"
#include "kv/protocol.hpp"
#include "kv/sharded_memtable.hpp"
#include "kv/slab_memtable.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rnb::kv {

/// Snapshot of a server's request counters (plain integers; the live
/// counters are relaxed atomics so concurrent handle() calls never race).
struct ServerCounters {
  std::uint64_t transactions = 0;
  std::uint64_t keys_requested = 0;
  std::uint64_t keys_returned = 0;
  std::uint64_t stores = 0;
  std::uint64_t deletes = 0;
  std::uint64_t protocol_errors = 0;
};

template <typename Store>
class BasicKvServer {
 public:
  /// Construct the underlying store from whatever it takes (byte budget for
  /// MemTable, SlabConfig for SlabMemTable, budget + shard count for
  /// ShardedMemTable).
  template <typename... StoreArgs>
  explicit BasicKvServer(StoreArgs&&... store_args)
      : table_(std::forward<StoreArgs>(store_args)...) {}

  /// Process one request frame, appending the response to `response`
  /// (cleared first). Never throws; malformed input yields CLIENT_ERROR.
  /// Safe to call concurrently iff the engine is (see the header comment).
  void handle(std::string_view request, std::string& response) {
    response.clear();
    obs::SpanScope txn_span("transaction", "server");
    counters_.transactions.fetch_add(1, std::memory_order_relaxed);
    std::string error;
    const std::optional<Command> cmd = parse_command(request, &error);
    if (!cmd) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      txn_span.note("outcome", "protocol_error");
      encode_simple("CLIENT_ERROR " + error, response);
      return;
    }

    if (const auto* get = std::get_if<GetCommand>(&*cmd)) {
      std::vector<Value> values;
      values.reserve(get->keys.size());
      counters_.keys_requested.fetch_add(get->keys.size(),
                                         std::memory_order_relaxed);
      if constexpr (kBatchedReads) {
        // Sharded engine: decompose the transaction into per-shard
        // sub-batches, one lock acquisition per involved shard, no global
        // ordering. Results come back positionally so the response keeps
        // request key order — byte-identical to the sequential loop.
        std::vector<std::optional<typename Store::GetResult>> results;
        table_.multi_get(get->keys, results);
        for (std::size_t i = 0; i < get->keys.size(); ++i) {
          if (results[i])
            values.push_back(Value{get->keys[i], std::move(results[i]->value),
                                   results[i]->version});
        }
      } else {
        for (const std::string& key : get->keys) {
          if (auto hit = table_.get(key))
            values.push_back(Value{key, std::move(hit->value), hit->version});
        }
      }
      counters_.keys_returned.fetch_add(values.size(),
                                        std::memory_order_relaxed);
      txn_span.arg("keys", static_cast<std::int64_t>(get->keys.size()));
      txn_span.arg("hits", static_cast<std::int64_t>(values.size()));
      encode_values(values, get->with_versions, response);
      return;
    }
    if (std::holds_alternative<StatsCommand>(*cmd)) {
      write_stats(response);
      return;
    }
    if (const auto* set = std::get_if<SetCommand>(&*cmd)) {
      counters_.stores.fetch_add(1, std::memory_order_relaxed);
      const bool ok = table_.set(set->key, set->data, set->pin);
      encode_simple(ok ? "STORED" : "SERVER_ERROR out of memory", response);
      return;
    }
    if (const auto* cas = std::get_if<CasCommand>(&*cmd)) {
      counters_.stores.fetch_add(1, std::memory_order_relaxed);
      switch (table_.cas(cas->key, cas->version, cas->data)) {
        case MemTable::CasOutcome::kStored:
          encode_simple("STORED", response);
          return;
        case MemTable::CasOutcome::kExists:
          encode_simple("EXISTS", response);
          return;
        case MemTable::CasOutcome::kNotFound:
          encode_simple("NOT_FOUND", response);
          return;
      }
    }
    if (const auto* del = std::get_if<DeleteCommand>(&*cmd)) {
      counters_.deletes.fetch_add(1, std::memory_order_relaxed);
      encode_simple(table_.erase(del->key) ? "DELETED" : "NOT_FOUND",
                    response);
      return;
    }
  }

  ServerCounters counters() const noexcept { return counters_.snapshot(); }
  Store& table() noexcept { return table_; }
  const Store& table() const noexcept { return table_; }

 private:
  /// True when the engine supports the batched per-shard read path.
  static constexpr bool kBatchedReads = requires(
      Store& t, std::span<const std::string> keys,
      std::vector<std::optional<typename Store::GetResult>>& out) {
    t.multi_get(keys, out);
  };
  /// True when the engine reports per-shard lock/eviction counters.
  static constexpr bool kShardMetrics = requires(const Store& t) {
    t.shard_count();
    t.shard_snapshot(0);
  };

  struct AtomicCounters {
    std::atomic<std::uint64_t> transactions{0};
    std::atomic<std::uint64_t> keys_requested{0};
    std::atomic<std::uint64_t> keys_returned{0};
    std::atomic<std::uint64_t> stores{0};
    std::atomic<std::uint64_t> deletes{0};
    std::atomic<std::uint64_t> protocol_errors{0};

    ServerCounters snapshot() const noexcept {
      return {transactions.load(std::memory_order_relaxed),
              keys_requested.load(std::memory_order_relaxed),
              keys_returned.load(std::memory_order_relaxed),
              stores.load(std::memory_order_relaxed),
              deletes.load(std::memory_order_relaxed),
              protocol_errors.load(std::memory_order_relaxed)};
    }
  };

  /// `stats` response: Prometheus text exposition (0.0.4) framed by a
  /// trailing "END\r\n". Built fresh per call — stats is a cold path and a
  /// throwaway registry keeps the hot counters plain relaxed increments.
  void write_stats(std::string& response) const {
    const ServerCounters snap = counters_.snapshot();
    obs::MetricsRegistry registry;
    registry
        .counter("rnb_kv_transactions_total",
                 "Request frames handled (stats included)")
        .inc(snap.transactions);
    registry
        .counter("rnb_kv_keys_requested_total",
                 "Keys asked for across all get/gets frames")
        .inc(snap.keys_requested);
    registry
        .counter("rnb_kv_keys_returned_total",
                 "Keys found and returned across all get/gets frames")
        .inc(snap.keys_returned);
    registry.counter("rnb_kv_stores_total", "set and cas frames handled")
        .inc(snap.stores);
    registry.counter("rnb_kv_deletes_total", "delete frames handled")
        .inc(snap.deletes);
    registry
        .counter("rnb_kv_protocol_errors_total",
                 "Frames rejected with CLIENT_ERROR")
        .inc(snap.protocol_errors);
    registry.gauge("rnb_kv_entries", "Live entries in the store")
        .set(static_cast<double>(table_.entries()));
    if constexpr (kShardMetrics) {
      registry.gauge("rnb_kv_shards", "Store shards (striped lock domains)")
          .set(static_cast<double>(table_.shard_count()));
      for (std::size_t i = 0; i < table_.shard_count(); ++i) {
        const auto shard = table_.shard_snapshot(i);
        const std::string label = "shard=\"" + std::to_string(i) + "\"";
        registry
            .counter("rnb_kv_shard_lock_acquisitions_total",
                     "Shard lock acquisitions (shared + exclusive)", label)
            .inc(shard.lock.total_acquisitions());
        registry
            .counter("rnb_kv_shard_lock_contended_total",
                     "Shard lock acquisitions that had to wait", label)
            .inc(shard.lock.contended_acquisitions);
        registry
            .counter("rnb_kv_shard_evictions_total",
                     "LRU evictions performed by the shard", label)
            .inc(shard.engine_stats.evictions);
        registry
            .gauge("rnb_kv_shard_entries", "Live entries in the shard",
                   label)
            .set(static_cast<double>(shard.entries));
      }
    }
    std::ostringstream os;
    registry.write_prometheus(os);
    response += os.str();
    encode_simple("END", response);
  }

  Store table_;
  AtomicCounters counters_;
};

/// Default engine: byte-budget global-LRU MemTable (single lock domain;
/// callers serialize).
using KvServer = BasicKvServer<MemTable>;

/// Memcached-faithful engine: slab classes with per-class LRU.
using SlabKvServer = BasicKvServer<SlabMemTable>;

/// Concurrent engine: sharded MemTable with striped locks — handle() is
/// thread-safe and scales with cores. One shard reproduces KvServer's
/// responses byte-for-byte.
using ShardedKvServer = BasicKvServer<ShardedMemTable>;

/// Concurrent memcached-faithful engine: sharded slab arenas.
using ShardedSlabKvServer = BasicKvServer<ShardedSlabMemTable>;

}  // namespace rnb::kv
