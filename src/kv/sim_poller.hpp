// SimPoller: a deterministic PollSource that replays scripted schedules.
//
// The reactor's connection state machines are where timing-sensitive bugs
// live — torn frames, EAGAIN between header and body, short writes that
// stop mid-response, peers that reset with half a frame buffered. Over
// real sockets those interleavings depend on kernel buffer luck; here they
// are *scripted*: a test builds connections whose read side is a sequence
// of explicit steps (deliver exactly these bytes / report EAGAIN once /
// EOF / reset) and whose write side is a sequence of acceptance caps
// (take at most N bytes / would-block once / reset). wait() then reports
// level-triggered readiness derived purely from those scripts, in
// ascending handle order, so a reactor driven by step() executes the same
// transition sequence on every run — under TSan, under ASan, forever.
//
// Everything is single-threaded by design: the test thread IS the loop
// thread. interrupt() is a no-op.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "kv/poller.hpp"

namespace rnb::kv {

/// One scripted read-side step.
struct SimReadStep {
  enum class Kind {
    kData,        // deliver `bytes` (short reads: one step = one read())
    kWouldBlock,  // report readable, then EAGAIN on the actual read
    kEof,         // orderly close from the peer
    kReset,       // connection reset (ECONNRESET-style kError)
  };
  Kind kind = Kind::kData;
  std::string bytes;

  static SimReadStep data(std::string b) {
    return {Kind::kData, std::move(b)};
  }
  static SimReadStep would_block() { return {Kind::kWouldBlock, {}}; }
  static SimReadStep eof() { return {Kind::kEof, {}}; }
  static SimReadStep reset() { return {Kind::kReset, {}}; }
};

/// One scripted write-side step. An exhausted write script accepts
/// everything (the common case: only the interesting prefix is scripted).
struct SimWriteStep {
  enum class Kind {
    kAccept,      // take at most `cap` bytes of the gather write
    kWouldBlock,  // report EAGAIN for this write attempt
    kReset,       // peer reset: the write fails fatally
  };
  Kind kind = Kind::kAccept;
  std::size_t cap = 0;

  static SimWriteStep accept(std::size_t cap) {
    return {Kind::kAccept, cap};
  }
  static SimWriteStep would_block() { return {Kind::kWouldBlock, 0}; }
  static SimWriteStep reset() { return {Kind::kReset, 0}; }
};

/// Full schedule for one scripted connection.
struct SimConnectionScript {
  std::vector<SimReadStep> reads;
  std::vector<SimWriteStep> writes;
};

class SimPoller final : public PollSource {
 public:
  /// The handle reactors treat as the listening socket.
  static constexpr int kListener = 0;

  /// Queue a scripted inbound connection on the listener; returns the
  /// handle it will get once accepted. Deterministic: handles are assigned
  /// 1, 2, 3, ... in add_connection order.
  int add_connection(SimConnectionScript script);

  /// Everything the connection's writes produced so far (also available
  /// after close — tests assert on response bytes).
  const std::string& output(int handle) const;

  /// True once the reactor closed the handle.
  bool closed(int handle) const;

  /// Append more scripted read steps to a live connection — lets a test
  /// interleave "deliver, step the loop, deliver more" sequences.
  void extend_reads(int handle, std::vector<SimReadStep> steps);
  void extend_writes(int handle, std::vector<SimWriteStep> steps);

  // PollSource:
  void add(int handle, bool want_read, bool want_write) override;
  void modify(int handle, bool want_read, bool want_write) override;
  void remove(int handle) override;
  std::size_t wait(std::vector<PollEvent>& events, int timeout_ms) override;
  IoResult read(int handle, char* buffer, std::size_t capacity) override;
  IoResult writev(int handle,
                  std::span<const std::string_view> chunks) override;
  int accept(int listen_handle) override;
  void close(int handle) override;

 private:
  struct Connection {
    std::deque<SimReadStep> reads;
    std::deque<SimWriteStep> writes;
    std::string output;     // bytes the reactor successfully wrote
    bool want_read = false;
    bool want_write = false;
    bool registered = false;
    bool closed = false;
  };

  Connection& conn(int handle);
  const Connection& conn(int handle) const;

  /// Readable = the read script has a pending step (level-triggered: the
  /// reactor keeps getting told until it drains the script).
  static bool sim_readable(const Connection& c) { return !c.reads.empty(); }
  /// Writable = the next write attempt would make progress (or the script
  /// ran out, meaning "accept everything").
  static bool sim_writable(const Connection& c) {
    return c.writes.empty() ||
           c.writes.front().kind != SimWriteStep::Kind::kWouldBlock;
  }

  std::map<int, Connection> connections_;  // ordered => deterministic events
  std::deque<int> pending_accepts_;
  bool listener_registered_ = false;
  bool listener_want_read_ = false;
  int next_handle_ = 1;
};

}  // namespace rnb::kv
