#include "kv/kv_server.hpp"

// Explicit instantiations: compile both shipped server configurations in
// one TU under the library's full warning set, so template errors surface
// here instead of in whichever user TU first touches them.
namespace rnb::kv {
template class BasicKvServer<MemTable>;
template class BasicKvServer<SlabMemTable>;
}  // namespace rnb::kv
