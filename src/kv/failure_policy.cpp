#include "kv/failure_policy.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace rnb::kv {

KvExchange::KvExchange(KvTransport& transport, const KvFailurePolicy& policy)
    : transport_(transport), policy_(policy), backoff_rng_(policy.rng_seed) {
  RNB_REQUIRE(policy.hedge_quantile >= 0.0 && policy.hedge_quantile <= 1.0);
}

bool KvExchange::deadline_exceeded(double elapsed) const {
  const double deadline = policy_.deadline;
  return deadline > 0.0 && elapsed >= deadline;
}

double KvExchange::hedge_threshold() const {
  // Quantile of the recent-latency ring; only meaningful once the window
  // has a baseline (16 samples), which keeps cold starts from hedging on
  // the very first slightly-slow response.
  const std::size_t n =
      latency_full_ ? latency_window_.size() : latency_next_;
  if (n < 16) return std::numeric_limits<double>::infinity();
  std::vector<double> sorted(latency_window_.begin(),
                             latency_window_.begin() +
                                 static_cast<std::ptrdiff_t>(n));
  std::sort(sorted.begin(), sorted.end());
  const double pos = policy_.hedge_quantile * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void KvExchange::observe_latency(double latency) {
  if (policy_.latency_window == 0) return;
  if (latency_window_.size() < policy_.latency_window) {
    latency_window_.push_back(latency);
    latency_next_ = latency_window_.size();
    return;
  }
  if (latency_next_ >= latency_window_.size()) {
    latency_next_ = 0;
    latency_full_ = true;
  }
  latency_window_[latency_next_++] = latency;
}

bool KvExchange::exchange(
    ServerId server, std::string& request, std::string& response,
    double& elapsed, const std::function<bool(const std::string&)>& valid,
    bool allow_hedge) {
  const KvFailurePolicy& fp = policy_;
  // Inside a multi_get the transaction joins the request's trace; a bare
  // single-key operation roots its own, so every frame that leaves the
  // client carries an identity whenever a tracer is installed.
  obs::SpanScope txn_span("transaction", "kv_client",
                          obs::Tracer::ambient_context().valid()
                              ? obs::SpanScope::Kind::kChild
                              : obs::SpanScope::Kind::kRoot);
  txn_span.arg("server", static_cast<std::int64_t>(server));
  const obs::TraceContext ctx = txn_span.context();
  if (ctx.valid())
    append_trace_tag(request,
                     TraceTag{ctx.trace_id, ctx.span_id, ctx.sampled});
  const std::uint32_t attempts = std::max(1u, fp.max_attempts);
  double backoff = fp.base_backoff;
  for (std::uint32_t a = 0; a < attempts; ++a) {
    if (a > 0) {
      // Decorrelated jitter: each wait is uniform between the base and
      // three times the previous wait, capped. Seeded stream, no clock.
      const double hi = std::min(fp.max_backoff, 3.0 * backoff);
      backoff = fp.base_backoff +
                (hi - fp.base_backoff) * backoff_rng_.uniform01();
      elapsed += backoff;
      ++stats_.retries;
      if (obs::Tracer* t = obs::Tracer::current())
        t->instant("retry", "kv_client",
                   {{"server", static_cast<std::int64_t>(server)},
                    {"attempt", static_cast<std::int64_t>(a)}});
    }
    if (deadline_exceeded(elapsed)) return false;
    ++stats_.attempts;
    const TransportResult r = transport_.roundtrip(server, request, response);
    double cost = r.latency;
    bool ok = r.ok();
    if (!ok) {
      ++stats_.transport_errors;
    } else if (response.empty()) {
      // A zero-byte response is a closed or dying peer, never a valid
      // frame (every reply ends in a verb line or END) — treat it as a
      // transport error, not a clean miss.
      ++stats_.empty_responses;
      ok = false;
    } else if (valid && !valid(response)) {
      ++stats_.malformed_responses;
      ok = false;
    }
    if (fp.hedging && allow_hedge) {
      const double threshold = hedge_threshold();
      if (!ok || r.latency > threshold) {
        // The duplicate would have been launched `threshold` after the
        // primary; synchronously, the winner costs min(primary, threshold
        // + hedge). Same server, same frame — duplicates are idempotent.
        ++stats_.hedged_sends;
        if (obs::Tracer* t = obs::Tracer::current())
          t->instant("hedge", "kv_client",
                     {{"server", static_cast<std::int64_t>(server)},
                      {"attempt", static_cast<std::int64_t>(a)}});
        std::string hedge_response;
        const TransportResult h =
            transport_.roundtrip(server, request, hedge_response);
        const double hedge_cost =
            std::min(threshold, r.latency) + h.latency;
        bool hedge_ok = h.ok() && !hedge_response.empty() &&
                        (!valid || valid(hedge_response));
        if (hedge_ok && (!ok || hedge_cost < cost)) {
          ++stats_.hedge_wins;
          response = std::move(hedge_response);
          cost = ok ? std::min(cost, hedge_cost) : hedge_cost;
          ok = true;
        }
      }
    }
    elapsed += cost;
    if (ok) {
      observe_latency(cost);
      return true;
    }
  }
  txn_span.note("outcome", "failed");
  return false;
}

std::optional<std::vector<Value>> KvExchange::exchange_values(
    ServerId server, std::string& request, std::string& response,
    bool with_versions, double& elapsed) {
  const bool ok = exchange(server, request, response, elapsed,
                           [with_versions](const std::string& resp) {
                             return parse_values(resp, with_versions)
                                 .has_value();
                           });
  if (!ok) return std::nullopt;
  return parse_values(response, with_versions);
}

}  // namespace rnb::kv
