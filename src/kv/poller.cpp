#include "kv/poller.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>

namespace rnb::kv {
namespace {

constexpr std::size_t kMaxIov = 64;  // IOV_MAX is >= 1024 everywhere; 64
                                     // chunks per writev is plenty per flush

std::uint32_t epoll_mask(bool want_read, bool want_write) {
  std::uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  // EPOLLERR/EPOLLHUP are always reported; no need to request them.
  return mask;
}

}  // namespace

EpollPoller::EpollPoller() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw std::runtime_error("epoll_create1 failed");
  wakeup_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeup_fd_ < 0) {
    ::close(epoll_fd_);
    throw std::runtime_error("eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev);
}

EpollPoller::~EpollPoller() {
  ::close(wakeup_fd_);
  ::close(epoll_fd_);
}

void EpollPoller::add(int handle, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = epoll_mask(want_read, want_write);
  ev.data.fd = handle;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, handle, &ev);
}

void EpollPoller::modify(int handle, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = epoll_mask(want_read, want_write);
  ev.data.fd = handle;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, handle, &ev);
}

void EpollPoller::remove(int handle) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, handle, nullptr);
}

std::size_t EpollPoller::wait(std::vector<PollEvent>& events,
                              int timeout_ms) {
  events.clear();
  epoll_event raw[128];
  const int n = ::epoll_wait(epoll_fd_, raw, 128, timeout_ms);
  if (n <= 0) return 0;  // timeout, EINTR, or interrupt
  events.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (raw[i].data.fd == wakeup_fd_) {
      std::uint64_t drain = 0;
      [[maybe_unused]] const ssize_t r =
          ::read(wakeup_fd_, &drain, sizeof(drain));
      continue;
    }
    PollEvent ev;
    ev.handle = raw[i].data.fd;
    ev.readable = (raw[i].events & EPOLLIN) != 0;
    ev.writable = (raw[i].events & EPOLLOUT) != 0;
    ev.hangup = (raw[i].events & (EPOLLHUP | EPOLLERR)) != 0;
    events.push_back(ev);
  }
  return events.size();
}

IoResult EpollPoller::read(int handle, char* buffer, std::size_t capacity) {
  const ssize_t n = ::recv(handle, buffer, capacity, 0);
  if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
  if (n == 0) return {IoStatus::kEof, 0};
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
    return {IoStatus::kWouldBlock, 0};
  return {IoStatus::kError, 0};
}

IoResult EpollPoller::writev(int handle,
                             std::span<const std::string_view> chunks) {
  iovec iov[kMaxIov];
  std::size_t iov_count = 0;
  for (const std::string_view chunk : chunks) {
    if (iov_count == kMaxIov) break;
    if (chunk.empty()) continue;
    iov[iov_count].iov_base = const_cast<char*>(chunk.data());
    iov[iov_count].iov_len = chunk.size();
    ++iov_count;
  }
  if (iov_count == 0) return {IoStatus::kOk, 0};
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = iov_count;
  // sendmsg rather than writev for MSG_NOSIGNAL: a peer that reset mid
  // write must surface as kError, not kill the process with SIGPIPE.
  const ssize_t n = ::sendmsg(handle, &msg, MSG_NOSIGNAL);
  if (n >= 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
    return {IoStatus::kWouldBlock, 0};
  return {IoStatus::kError, 0};
}

int EpollPoller::accept(int listen_handle) {
  const int fd = ::accept4(listen_handle, nullptr, nullptr, SOCK_NONBLOCK);
  if (fd >= 0) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
      errno == ECONNABORTED)
    return -1;
  return -2;
}

void EpollPoller::close(int handle) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, handle, nullptr);
  ::close(handle);
}

void EpollPoller::interrupt() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t r =
      ::write(wakeup_fd_, &one, sizeof(one));
}

}  // namespace rnb::kv
