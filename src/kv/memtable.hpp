// In-memory key-value table with byte-budget LRU eviction and CAS versions.
//
// This is the storage engine of the mini-memcached (paper Section IV's
// proof-of-concept). Unlike the slot-based simulation caches, it stores real
// bytes with real memory accounting, supports memcached's gets/cas
// unique-version semantics, and honours the two-service-class design: pinned
// entries (distinguished copies) are never evicted and are excluded from the
// eviction scan entirely.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/lru_cache.hpp"  // CacheStats
#include "common/hash.hpp"

namespace rnb {

/// Transparent string hash enabling find(string_view) without a temporary
/// std::string — the mini-kv's get path is what Figs. 13-14 benchmark, so
/// a per-lookup allocation would be measurement noise.
struct TransparentStringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return static_cast<std::size_t>(fnv1a64(s));
  }
  std::size_t operator()(const std::string& s) const noexcept {
    return (*this)(std::string_view(s));
  }
};

/// One entry surfaced by an engine scan (replica migration's unit of work).
/// Carries the pinned bit so migration preserves the two service classes.
struct ScanEntry {
  std::string key;
  std::string value;
  std::uint64_t version = 0;
  bool pinned = false;
};

class MemTable {
 public:
  /// Engine identity for observability (slow-log entries, stats labels).
  static constexpr const char* kEngineName = "map";

  /// `byte_budget` bounds the *evictable* bytes; pinned entries are
  /// accounted separately and never evicted.
  explicit MemTable(std::size_t byte_budget);

  struct GetResult {
    std::string value;
    std::uint64_t version;
  };

  /// Store (insert or overwrite). Pinned stores always succeed; unpinned
  /// stores evict LRU entries as needed and fail (returning false) only if
  /// the value alone exceeds the byte budget.
  bool set(std::string_view key, std::string_view value, bool pinned = false);

  /// Fetch, refreshing LRU recency for evictable entries.
  std::optional<GetResult> get(std::string_view key);

  /// Fetch without touching recency (hitchhiker probes, tests).
  std::optional<GetResult> peek(std::string_view key) const;

  /// Outcome of a mutation-free read attempt (see fast_get).
  enum class FastGetOutcome { kHit, kMiss, kNeedsRecency };

  /// Resolve a get if — and only if — doing so mutates nothing: the entry
  /// is pinned (no recency) or already at the MRU position. Misses also
  /// resolve (a miss moves nothing). kNeedsRecency means the entry exists
  /// but its LRU position must move; the caller retries with get() under
  /// whatever write exclusion it maintains. Never touches stats() — the
  /// sharded wrapper counts fast-path hits/misses itself, so aggregate
  /// accounting matches the plain-get path exactly.
  FastGetOutcome fast_get(std::string_view key, GetResult& out) const;

  /// Compare-and-swap: store only if the entry exists with `expected`
  /// version. Returns kStored, kExists (version mismatch) or kNotFound.
  enum class CasOutcome { kStored, kExists, kNotFound };
  CasOutcome cas(std::string_view key, std::uint64_t expected,
                 std::string_view value);

  bool erase(std::string_view key);
  bool contains(std::string_view key) const;

  /// Page through entries for migration: append up to `max_keys` entries
  /// (`max_keys` >= 1) starting at skip-count `cursor`, returning the next
  /// cursor (0 = exhausted). Weakly consistent under interleaved mutation —
  /// like memcached's lru_crawler, entries written mid-scan may be seen
  /// zero or more times; migration's idempotent re-sets absorb that. O(n)
  /// positioning per page is acceptable: scans run in migration batches,
  /// never on the serving fast path.
  std::uint64_t scan(std::uint64_t cursor, std::size_t max_keys,
                     std::vector<ScanEntry>& out) const;

  std::size_t entries() const noexcept { return table_.size(); }
  std::size_t evictable_bytes() const noexcept { return evictable_bytes_; }
  std::size_t pinned_bytes() const noexcept { return pinned_bytes_; }
  std::size_t byte_budget() const noexcept { return byte_budget_; }
  const CacheStats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    std::string value;
    std::uint64_t version;
    bool pinned;
    /// Valid only when !pinned: position in lru_ (front == MRU).
    std::list<std::string>::iterator lru_pos;
  };

  static std::size_t entry_cost(std::string_view key, std::string_view value) {
    // Key + value payload plus a fixed per-entry overhead standing in for
    // memcached's item header + hash chain pointers.
    return key.size() + value.size() + kPerEntryOverhead;
  }

  void evict_until(std::size_t needed);

  static constexpr std::size_t kPerEntryOverhead = 48;

  std::size_t byte_budget_;
  std::size_t evictable_bytes_ = 0;
  std::size_t pinned_bytes_ = 0;
  std::uint64_t next_version_ = 1;
  std::unordered_map<std::string, Entry, TransparentStringHash,
                     std::equal_to<>>
      table_;
  std::list<std::string> lru_;  // front = MRU, holds keys of evictable entries
  CacheStats stats_;
};

}  // namespace rnb
