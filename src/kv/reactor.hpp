// Event-driven kv server core: one event loop, per-connection request
// state machines, zero blocking reads.
//
// The thread-per-connection model (kv/tcp.hpp) spends one OS thread — a
// stack, a scheduler slot, two context switches per request — on every
// connection, which caps the serving tier far below the connection counts
// an RnB front end generates when it fans one multiget into many small
// per-server transactions. The reactor replaces it with the classic
// non-blocking shape (cf. memcached's libevent workers, cortx-motr's
// fop/fom request state machines): an EventLoop waits on a PollSource,
// and each ready connection runs its state machine —
//
//   read     drain the socket into a pooled chunk buffer until EAGAIN
//   frame    incremental FrameSplitter: torn frames stay buffered, any
//            number of pipelined frames pop at once
//   handle   dispatch{shard} into the sharded engine (the same
//            BasicKvServer::handle as every other transport, so the span
//            tree, trace-tag adoption, and engine counters are identical)
//   write    responses batch into an outbox flushed with one gather
//            write; a short write arms EPOLLOUT and the flush resumes on
//            the next writable event
//
// The loop never blocks on any single peer: a stalled connection just
// keeps its outbox buffered while everyone else proceeds.
//
// Testability is the point of the PollSource seam: EpollPoller serves
// real sockets, SimPoller (kv/sim_poller.hpp) replays scripted
// readiness / partial-read / EAGAIN / short-write / reset schedules, so
// the state machine transitions are unit-tested deterministically —
// including every torn-frame byte boundary — without a kernel in the way.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "kv/poller.hpp"
#include "kv/tcp.hpp"
#include "kv/wire_server.hpp"
#include "obs/loop_stats.hpp"

namespace rnb::kv {

/// The reactor: owns the connection state machines, drives them from a
/// PollSource. One thread runs run() (or a test drives step() directly —
/// the loop has no thread of its own).
class EventLoop {
 public:
  struct Config {
    /// Listening handle to accept from; -1 = none (tests adopt handles).
    int listen_handle = -1;
    /// Pooled read-chunk size. Small values exercise short-read paths.
    std::size_t read_chunk = 16384;
    /// Fairness bound: max read() calls per readiness event before the
    /// connection yields to the rest of the batch (level-triggered
    /// readiness re-reports it on the next wait).
    std::size_t max_reads_per_event = 16;
  };

  EventLoop(PollSource& poll, ShardedKvServer& engine, Config config);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Serve an already-connected handle (what accept would have produced).
  void adopt(int handle);

  /// One wait-and-dispatch batch; returns the number of readiness events
  /// processed. `timeout_ms` 0 = poll (sim tests), -1 = block.
  std::size_t step(int timeout_ms);

  /// step(-1) until request_stop(). Meant for a dedicated loop thread.
  void run();

  /// Ask run() to return; safe from any thread (interrupts the wait).
  void request_stop();

  /// Close every live connection (call after run() returned / between
  /// step()s — loop-thread context only).
  void close_all();

  std::size_t open_connections() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t accept_errors() const noexcept {
    return accept_errors_.load(std::memory_order_relaxed);
  }
  /// Connections torn down by peer reset / fatal socket error (orderly
  /// EOFs are not resets).
  std::uint64_t resets() const noexcept {
    return resets_.load(std::memory_order_relaxed);
  }
  std::uint64_t responses_sent() const noexcept {
    return responses_.load(std::memory_order_relaxed);
  }

  const obs::LoopStats& stats() const noexcept { return stats_; }

 private:
  /// One queued response: bytes, how much already left the socket, and
  /// the trace tag to attribute the eventual write span to.
  struct OutEntry {
    std::string bytes;
    std::size_t offset = 0;
    TraceTag trace;
  };

  struct Connection {
    int handle = -1;
    FrameSplitter splitter;
    std::deque<OutEntry> outbox;
    std::size_t outbox_bytes = 0;
    bool want_write = false;  // EPOLLOUT armed
    bool draining = false;    // peer EOF seen: close once outbox empties
  };

  void do_accept();
  void on_event(const PollEvent& event);
  /// Drain readable bytes, pop complete frames, dispatch, queue responses.
  void on_readable(Connection& conn);
  /// Parse-and-dispatch every complete frame buffered so far.
  void process_frames(Connection& conn);
  /// Gather-write the outbox; arms/disarms EPOLLOUT as needed. Returns
  /// false when the connection died mid-write.
  bool flush(Connection& conn);
  /// Tear down: deregister, close, forget. `reset` counts it as one.
  void destroy(Connection& conn, bool reset);

  std::string acquire_buffer();
  void release_buffer(std::string&& buffer);

  PollSource& poll_;
  ShardedKvServer& engine_;
  Config config_;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  std::vector<PollEvent> events_;
  std::string read_chunk_;   // loop-owned, reused every read
  std::string frame_;        // loop-owned, reused every frame
  std::vector<std::string> buffer_pool_;  // response strings, recycled
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> active_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> accept_errors_{0};
  std::atomic<std::uint64_t> resets_{0};
  std::atomic<std::uint64_t> responses_{0};
  obs::LoopStats stats_;
};

/// A TCP server with the same engine, protocol, counters, and stats
/// exposition as TcpKvServer — but one epoll loop thread instead of a
/// thread per connection. Drop-in via the WireServer seam.
class ReactorKvServer final : public WireServer {
 public:
  explicit ReactorKvServer(std::size_t byte_budget, std::uint16_t port = 0,
                           std::size_t num_shards = 0);
  ~ReactorKvServer() override;

  ReactorKvServer(const ReactorKvServer&) = delete;
  ReactorKvServer& operator=(const ReactorKvServer&) = delete;

  std::uint16_t port() const noexcept override { return port_; }
  ShardedKvServer& server() noexcept override { return server_; }
  std::uint64_t connections_accepted() const noexcept override {
    return loop_->connections_accepted();
  }
  std::uint64_t connections_active() const noexcept override {
    return loop_->open_connections();
  }
  std::uint64_t accept_errors() const noexcept override {
    return loop_->accept_errors();
  }
  void shutdown() override;

  /// Loop internals for tests and benches (resets, batch stats).
  EventLoop& loop() noexcept { return *loop_; }

 private:
  ShardedKvServer server_;
  EpollPoller poller_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::unique_ptr<EventLoop> loop_;
  std::thread loop_thread_;
  std::atomic<bool> stopping_{false};
};

}  // namespace rnb::kv
