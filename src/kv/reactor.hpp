// Event-driven kv server core: one event loop, per-connection request
// state machines, zero blocking reads.
//
// The thread-per-connection model (kv/tcp.hpp) spends one OS thread — a
// stack, a scheduler slot, two context switches per request — on every
// connection, which caps the serving tier far below the connection counts
// an RnB front end generates when it fans one multiget into many small
// per-server transactions. The reactor replaces it with the classic
// non-blocking shape (cf. memcached's libevent workers, cortx-motr's
// fop/fom request state machines): an EventLoop waits on a PollSource,
// and each ready connection runs its state machine —
//
//   read     drain the socket into a pooled chunk buffer until EAGAIN
//   frame    incremental FrameSplitter: torn frames stay buffered, any
//            number of pipelined frames pop at once
//   handle   dispatch{shard} into the sharded engine (the same
//            BasicKvServer::handle as every other transport, so the span
//            tree, trace-tag adoption, and engine counters are identical)
//   write    responses batch into an outbox flushed with one gather
//            write; a short write arms EPOLLOUT and the flush resumes on
//            the next writable event
//
// The loop never blocks on any single peer: a stalled connection just
// keeps its outbox buffered while everyone else proceeds.
//
// Testability is the point of the PollSource seam: EpollPoller serves
// real sockets, SimPoller (kv/sim_poller.hpp) replays scripted
// readiness / partial-read / EAGAIN / short-write / reset schedules, so
// the state machine transitions are unit-tested deterministically —
// including every torn-frame byte boundary — without a kernel in the way.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "kv/poller.hpp"
#include "kv/tcp.hpp"
#include "kv/wire_server.hpp"
#include "obs/loop_stats.hpp"

namespace rnb::kv {

/// The reactor: owns the connection state machines, drives them from a
/// PollSource. One thread runs run() (or a test drives step() directly —
/// the loop has no thread of its own).
class EventLoop {
 public:
  struct Config {
    /// Listening handle to accept from; -1 = none (tests adopt handles).
    int listen_handle = -1;
    /// Pooled read-chunk size. Small values exercise short-read paths.
    std::size_t read_chunk = 16384;
    /// Fairness bound: max read() calls per readiness event before the
    /// connection yields to the rest of the batch (level-triggered
    /// readiness re-reports it on the next wait).
    std::size_t max_reads_per_event = 16;
  };

  EventLoop(PollSource& poll, RequestSink sink, Config config);

  /// Convenience: wrap any BasicKvServer instantiation directly (the shape
  /// every SimPoller unit test uses).
  template <typename KvServerT>
    requires(!std::same_as<std::remove_cvref_t<KvServerT>, RequestSink>)
  EventLoop(PollSource& poll, KvServerT& server, Config config)
      : EventLoop(poll, RequestSink::of(server), config) {}

  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Serve an already-connected handle (what accept would have produced).
  void adopt(int handle);

  /// One wait-and-dispatch batch; returns the number of readiness events
  /// processed. `timeout_ms` 0 = poll (sim tests), -1 = block.
  std::size_t step(int timeout_ms);

  /// step(-1) until request_stop(). Meant for a dedicated loop thread.
  void run();

  /// Ask run() to return; safe from any thread (interrupts the wait).
  void request_stop();

  /// Close every live connection (call after run() returned / between
  /// step()s — loop-thread context only).
  void close_all();

  std::size_t open_connections() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t accept_errors() const noexcept {
    return accept_errors_.load(std::memory_order_relaxed);
  }
  /// Connections torn down by peer reset / fatal socket error (orderly
  /// EOFs are not resets).
  std::uint64_t resets() const noexcept {
    return resets_.load(std::memory_order_relaxed);
  }
  std::uint64_t responses_sent() const noexcept {
    return responses_.load(std::memory_order_relaxed);
  }

  const obs::LoopStats& stats() const noexcept { return stats_; }

 private:
  /// One queued response: bytes, how much already left the socket, and
  /// the trace tag to attribute the eventual write span to.
  struct OutEntry {
    std::string bytes;
    std::size_t offset = 0;
    TraceTag trace;
  };

  struct Connection {
    int handle = -1;
    FrameSplitter splitter;
    std::deque<OutEntry> outbox;
    std::size_t outbox_bytes = 0;
    bool want_write = false;  // EPOLLOUT armed
    bool draining = false;    // peer EOF seen: close once outbox empties
  };

  void do_accept();
  void on_event(const PollEvent& event);
  /// Drain readable bytes, pop complete frames, dispatch, queue responses.
  void on_readable(Connection& conn);
  /// Parse-and-dispatch every complete frame buffered so far.
  void process_frames(Connection& conn);
  /// Gather-write the outbox; arms/disarms EPOLLOUT as needed. Returns
  /// false when the connection died mid-write.
  bool flush(Connection& conn);
  /// Tear down: deregister, close, forget. `reset` counts it as one.
  void destroy(Connection& conn, bool reset);

  std::string acquire_buffer();
  void release_buffer(std::string&& buffer);

  PollSource& poll_;
  RequestSink sink_;
  Config config_;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  std::vector<PollEvent> events_;
  std::string read_chunk_;   // loop-owned, reused every read
  std::string frame_;        // loop-owned, reused every frame
  std::vector<std::string> buffer_pool_;  // response strings, recycled
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> active_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> accept_errors_{0};
  std::atomic<std::uint64_t> resets_{0};
  std::atomic<std::uint64_t> responses_{0};
  obs::LoopStats stats_;
};

/// The reactor serving core: nonblocking listener, EpollPoller, EventLoop,
/// one loop thread. Engine-agnostic via RequestSink, mirroring
/// TcpServerCore: the constructor binds and listens but does NOT serve —
/// the owning wrapper installs its stats hook first, then calls start().
class ReactorServerCore {
 public:
  ReactorServerCore(RequestSink sink, std::uint16_t port);
  ~ReactorServerCore();

  ReactorServerCore(const ReactorServerCore&) = delete;
  ReactorServerCore& operator=(const ReactorServerCore&) = delete;

  /// Launch the loop thread. Call exactly once.
  void start();

  std::uint16_t port() const noexcept { return port_; }

  /// Loop internals for tests, benches, and stats hooks (resets, batch
  /// stats, connection counters).
  EventLoop& loop() noexcept { return *loop_; }
  const EventLoop& loop() const noexcept { return *loop_; }

  /// Stop the loop thread, close every connection and the listener.
  void shutdown();

 private:
  EpollPoller poller_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::unique_ptr<EventLoop> loop_;
  std::thread loop_thread_;
  std::atomic<bool> stopping_{false};
};

/// A TCP server with the same engine, protocol, counters, and stats
/// exposition as BasicTcpKvServer — but one epoll loop thread instead of a
/// thread per connection. Drop-in via the WireServer seam.
template <typename KvServerT>
class BasicReactorKvServer final : public WireServer {
 public:
  /// `budget` is whatever the engine's store takes first: a byte budget
  /// for map/swiss engines, a SlabConfig for the slab engine.
  template <typename BudgetT>
  explicit BasicReactorKvServer(const BudgetT& budget,
                                std::uint16_t port = 0,
                                std::size_t num_shards = 0)
      : server_(budget, num_shards), core_(RequestSink::of(server_), port) {
    // Same wire-health series as the thread-per-connection server, plus
    // the loop-level signals only a reactor has. Installed before the
    // loop thread starts, so no stats frame can race the assignment.
    server_.set_stats_hook([this](obs::MetricsRegistry& registry) {
      registry
          .counter("rnb_kv_connections_accepted_total",
                   "TCP connections accepted since boot")
          .inc(core_.loop().connections_accepted());
      registry
          .gauge("rnb_kv_connections_active",
                 "TCP connections currently being served")
          .set(static_cast<double>(core_.loop().open_connections()));
      registry
          .counter("rnb_kv_accept_errors_total",
                   "accept() failures outside orderly shutdown")
          .inc(core_.loop().accept_errors());
      registry
          .counter("rnb_kv_connection_resets_total",
                   "Connections torn down by peer reset or socket error")
          .inc(core_.loop().resets());
      core_.loop().stats().publish(registry);
    });
    core_.start();
  }
  ~BasicReactorKvServer() override { core_.shutdown(); }

  BasicReactorKvServer(const BasicReactorKvServer&) = delete;
  BasicReactorKvServer& operator=(const BasicReactorKvServer&) = delete;

  /// The wrapped engine server (concrete type; setup and tests).
  KvServerT& server() noexcept { return server_; }

  /// Loop internals for tests and benches (resets, batch stats).
  EventLoop& loop() noexcept { return core_.loop(); }

  std::uint16_t port() const noexcept override { return core_.port(); }
  ServerCounters counters() const override { return server_.counters(); }
  obs::ContentionSnapshot lock_counters() const override {
    return server_.table().lock_counters();
  }
  std::size_t shard_count() const override {
    return server_.table().shard_count();
  }
  std::uint64_t connections_accepted() const noexcept override {
    return core_.loop().connections_accepted();
  }
  std::uint64_t connections_active() const noexcept override {
    return core_.loop().open_connections();
  }
  std::uint64_t accept_errors() const noexcept override {
    return core_.loop().accept_errors();
  }
  void shutdown() override { core_.shutdown(); }

 private:
  KvServerT server_;  // before core_: the sink must outlive the loop thread
  ReactorServerCore core_;
};

/// The default reactor server: sharded map engine (the historical
/// ReactorKvServer).
using ReactorKvServer = BasicReactorKvServer<ShardedKvServer>;

/// Sharded swiss engine over the same loop (`loadgen_kv --engine=swiss`).
using SwissReactorKvServer = BasicReactorKvServer<ShardedSwissKvServer>;

/// Sharded slab engine over the same loop (`loadgen_kv --engine=slab`).
using SlabReactorKvServer = BasicReactorKvServer<ShardedSlabKvServer>;

}  // namespace rnb::kv
