// UDP transport for the mini-memcached.
//
// The paper's Appendix A: "We opted to use TCP and not UDP ... the
// benchmark program suffered, as expected, from considerable packet loss
// issues when attempting to communicate with the server as fast as possible
// over a protocol without flow control." This module makes that trade-off
// concrete: memcached's UDP frame header (request id / sequence / total /
// reserved, 8 bytes) over real datagrams, one request and one response per
// datagram. No retransmission, no flow control — a lost or oversized
// response surfaces as a timeout, exactly the failure mode that pushed the
// authors (and everyone since) to TCP for multi-gets. Large bundles
// overflow the datagram limit, which is itself instructive: UDP memcached
// caps the response near 64 KiB, so RnB-sized multi-gets genuinely need TCP.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>

#include "kv/kv_server.hpp"

namespace rnb::kv {

/// Memcached UDP frame header (8 bytes, network byte order).
struct UdpFrameHeader {
  std::uint16_t request_id = 0;
  std::uint16_t sequence = 0;
  std::uint16_t total_datagrams = 1;
  std::uint16_t reserved = 0;
};

constexpr std::size_t kUdpHeaderBytes = 8;
/// Conservative payload bound: classic 64 KiB datagram limit minus headers.
constexpr std::size_t kUdpMaxPayload = 65507 - kUdpHeaderBytes;

void encode_udp_header(const UdpFrameHeader& header, char out[kUdpHeaderBytes]);
UdpFrameHeader decode_udp_header(const char in[kUdpHeaderBytes]);

/// A UDP server on 127.0.0.1:<port> (0 picks a free port). One receive
/// thread; each datagram carries one complete request frame and the
/// response goes back in one datagram (single-datagram responses only —
/// oversized responses are DROPPED, as real UDP memcached clients
/// experience when a multi-get overflows the datagram budget).
class UdpKvServer {
 public:
  explicit UdpKvServer(std::size_t byte_budget, std::uint16_t port = 0,
                       std::size_t num_shards = 0);
  ~UdpKvServer();

  UdpKvServer(const UdpKvServer&) = delete;
  UdpKvServer& operator=(const UdpKvServer&) = delete;

  std::uint16_t port() const noexcept { return port_; }
  ShardedKvServer& server() noexcept { return server_; }

  /// Responses dropped because they exceeded one datagram.
  std::uint64_t oversize_drops() const noexcept {
    return oversize_drops_.load();
  }

  void shutdown();

 private:
  void receive_loop();

  // The sharded engine synchronizes internally; the single receive thread
  // needs no dispatch mutex, and inspection through server() is safe while
  // the loop runs.
  ShardedKvServer server_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> oversize_drops_{0};
  std::thread receiver_;
};

/// A blocking UDP client. roundtrip() returns nullopt on timeout — the
/// caller decides whether to retry, fall back to TCP, or count a loss.
class UdpKvConnection {
 public:
  explicit UdpKvConnection(std::uint16_t port,
                           std::chrono::milliseconds timeout =
                               std::chrono::milliseconds(200));
  ~UdpKvConnection();

  UdpKvConnection(const UdpKvConnection&) = delete;
  UdpKvConnection& operator=(const UdpKvConnection&) = delete;

  /// Send one request; wait for the matching response datagram (request ids
  /// are matched, stray datagrams discarded). nullopt on timeout or when
  /// the request itself exceeds one datagram.
  std::optional<std::string> roundtrip(std::string_view request);

  std::uint64_t timeouts() const noexcept { return timeouts_; }

 private:
  int fd_ = -1;
  std::uint16_t next_request_id_ = 1;
  std::uint64_t timeouts_ = 0;
};

}  // namespace rnb::kv
