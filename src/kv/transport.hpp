// In-process loopback transport to a fleet of kv servers.
//
// Substitutes for the paper testbed's TCP path (DESIGN.md Section 4): each
// roundtrip serializes a real request frame, executes the full
// parse/handle/format path on the target server, and hands back response
// bytes. How calls are synchronized depends on the engine:
//
//   * Plain engines (MemTable, SlabMemTable) are not thread-safe, so every
//     roundtrip crosses a per-server dispatch mutex — the historical
//     "single dispatch thread" model. That mutex is what makes the
//     two-client experiment of Fig. 14 meaningful in-process: concurrent
//     clients contend for the same server exactly as two memaslap
//     instances contend for one single-threaded memcached. It is also the
//     lock convoy the sharded path exists to remove.
//   * Sharded engines synchronize internally (striped per-shard locks; see
//     kv/sharded_memtable.hpp), so ShardedLoopbackTransport dispatches
//     concurrently with no transport-level lock at all — the loadgen_kv
//     bench measures exactly this difference.
//
// Generic over the storage engine: LoopbackTransport uses the byte-budget
// MemTable, SlabLoopbackTransport the memcached-faithful slab engine, and
// ShardedLoopbackTransport the concurrent sharded engine.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "kv/kv_server.hpp"
#include "kv/kv_transport.hpp"

namespace rnb::kv {

/// `kSerializeDispatch` selects the synchronization model above: true
/// wraps every roundtrip in the per-server mutex (required for engines
/// that are not thread-safe), false calls handle() concurrently (the
/// server must synchronize internally).
template <typename Server, bool kSerializeDispatch = true>
class BasicLoopbackTransport final : public KvTransport {
 public:
  /// Spin up `num_servers` servers, each constructed from `args` (byte
  /// budget for KvServer, SlabConfig for SlabKvServer, budget + shard
  /// count for ShardedKvServer).
  template <typename... Args>
  explicit BasicLoopbackTransport(ServerId num_servers, const Args&... args) {
    RNB_REQUIRE(num_servers > 0);
    servers_.reserve(num_servers);
    for (ServerId s = 0; s < num_servers; ++s)
      servers_.push_back(Endpoint{std::make_unique<Server>(args...),
                                  std::make_unique<std::mutex>()});
  }

  ServerId num_servers() const noexcept override {
    return static_cast<ServerId>(servers_.size());
  }

  /// Send `request` to server `s`; the response lands in `response`.
  /// Thread-safe per server (dispatch mutex or the server's own striped
  /// locks). In-process delivery never fails and models no time.
  TransportResult roundtrip(ServerId s, std::string_view request,
                            std::string& response) override {
    RNB_REQUIRE(s < servers_.size());
    Endpoint& ep = servers_[s];
    if constexpr (kSerializeDispatch) {
      // The dispatch mutex is the single-threaded server's queue; a
      // "queue" span makes the convoy wait visible in stitched traces
      // (child of the calling client's span, sibling of the server
      // transaction that follows).
      std::unique_lock lock(*ep.dispatch, std::defer_lock);
      {
        obs::SpanScope queue_span("queue", "transport");
        lock.lock();
      }
      ep.server->handle(request, response);
    } else {
      ep.server->handle(request, response);
    }
    return {};
  }

  /// Unsynchronized access for setup/inspection (not during benchmarks).
  Server& server(ServerId s) { return *servers_[s].server; }
  const Server& server(ServerId s) const { return *servers_[s].server; }

 private:
  struct Endpoint {
    std::unique_ptr<Server> server;
    std::unique_ptr<std::mutex> dispatch;
  };
  std::vector<Endpoint> servers_;
};

/// Default fleet: byte-budget global-LRU MemTable engines behind the
/// per-server dispatch mutex (deterministic; the Fig. 13/14 baseline).
using LoopbackTransport = BasicLoopbackTransport<KvServer>;

/// Memcached-faithful fleet: slab classes with per-class LRU.
using SlabLoopbackTransport = BasicLoopbackTransport<SlabKvServer>;

/// Concurrent fleet: sharded engines, no dispatch mutex — roundtrips from
/// many client threads execute in parallel on one server.
using ShardedLoopbackTransport =
    BasicLoopbackTransport<ShardedKvServer, /*kSerializeDispatch=*/false>;

/// Concurrent memcached-faithful fleet: sharded slab arenas.
using ShardedSlabLoopbackTransport =
    BasicLoopbackTransport<ShardedSlabKvServer, /*kSerializeDispatch=*/false>;

/// Concurrent swiss fleet: sharded open-addressing engines (hash-once
/// routing, slab payloads) — the loadgen `--engine=swiss` loopback path.
using SwissLoopbackTransport =
    BasicLoopbackTransport<ShardedSwissKvServer, /*kSerializeDispatch=*/false>;

}  // namespace rnb::kv
