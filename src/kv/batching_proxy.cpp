#include "kv/batching_proxy.hpp"

#include "common/error.hpp"

namespace rnb::kv {

const std::unordered_map<std::string, std::string>&
BatchingProxy::Ticket::values() const {
  RNB_REQUIRE(ready());
  return state_->values;
}

const std::vector<std::string>& BatchingProxy::Ticket::missing() const {
  RNB_REQUIRE(ready());
  return state_->missing;
}

BatchingProxy::BatchingProxy(RnbKvClient& client, std::uint32_t window)
    : client_(client), window_(window) {
  RNB_REQUIRE(window >= 1);
}

BatchingProxy::Ticket BatchingProxy::multi_get(
    std::span<const std::string> keys) {
  Ticket ticket;
  pending_.push_back(
      Pending{{keys.begin(), keys.end()}, ticket.state_});
  if (pending_.size() >= window_) flush();
  return ticket;
}

void BatchingProxy::flush() {
  if (pending_.empty()) return;

  // One merged plan over the union of all pending keys (the client dedups).
  std::vector<std::string> merged;
  for (const Pending& p : pending_)
    merged.insert(merged.end(), p.keys.begin(), p.keys.end());
  const RnbKvClient::MultiGetResult result = client_.multi_get(merged);
  transactions_ += result.transactions();
  served_ += pending_.size();

  // Demultiplex: each ticket gets exactly its own keys.
  for (Pending& p : pending_) {
    for (const std::string& key : p.keys) {
      const auto it = result.values.find(key);
      if (it != result.values.end())
        p.state->values.emplace(key, it->second);
      else if (std::find(p.state->missing.begin(), p.state->missing.end(),
                         key) == p.state->missing.end())
        p.state->missing.push_back(key);
    }
    p.state->ready = true;
  }
  pending_.clear();
}

}  // namespace rnb::kv
