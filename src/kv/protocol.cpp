#include "kv/protocol.hpp"

#include <charconv>

namespace rnb::kv {
namespace {

constexpr std::string_view kCrlf = "\r\n";

/// Split the next space-delimited token off `rest`.
std::string_view next_token(std::string_view& rest) {
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  const std::size_t end = rest.find(' ');
  std::string_view token = rest.substr(0, end);
  rest.remove_prefix(end == std::string_view::npos ? rest.size() : end);
  return token;
}

template <typename Int>
bool parse_int(std::string_view token, Int& out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

constexpr std::string_view kTracePrefix = "@trace=";
constexpr std::string_view kEpochPrefix = "@epoch=";
constexpr std::string_view kWrongEpochToken = "WRONG_EPOCH";

void append_hex(std::uint64_t id, std::string& out) {
  char buf[16];
  std::size_t n = 0;
  do {
    buf[n++] = "0123456789abcdef"[id & 0xf];
    id >>= 4;
  } while (id != 0);
  while (n != 0) out += buf[--n];
}

bool parse_hex(std::string_view token, std::uint64_t& out) {
  const auto [ptr, ec] = std::from_chars(
      token.data(), token.data() + token.size(), out, 16);
  return ec == std::errc{} && ptr == token.data() + token.size() &&
         !token.empty();
}

void format_trace_tag(const TraceTag& trace, std::string& out) {
  out += kTracePrefix;
  append_hex(trace.trace_id, out);
  out += ':';
  append_hex(trace.span_id, out);
  out += ':';
  append_hex(trace.sampled ? 1 : 0, out);
}

/// If the final token of `line` is a trace tag, parse it into `trace` and
/// strip it (plus its separating spaces) from `line`. Returns false only
/// for a malformed tag — the prefix is reserved, so "@trace=garbage" is a
/// parse error rather than a surprising key.
bool peel_trace_tag(std::string_view& line, TraceTag& trace,
                    std::string* error) {
  const std::size_t space = line.find_last_of(' ');
  std::string_view token =
      space == std::string_view::npos ? line : line.substr(space + 1);
  if (token.substr(0, kTracePrefix.size()) != kTracePrefix) return true;
  token.remove_prefix(kTracePrefix.size());
  const std::size_t c1 = token.find(':');
  const std::size_t c2 =
      c1 == std::string_view::npos ? c1 : token.find(':', c1 + 1);
  std::uint64_t trace_id = 0, span_id = 0, flags = 0;
  if (c2 == std::string_view::npos ||
      token.find(':', c2 + 1) != std::string_view::npos ||
      !parse_hex(token.substr(0, c1), trace_id) ||
      !parse_hex(token.substr(c1 + 1, c2 - c1 - 1), span_id) ||
      !parse_hex(token.substr(c2 + 1), flags) || trace_id == 0)
    return fail(error, "bad trace tag");
  trace.trace_id = trace_id;
  trace.span_id = span_id;
  trace.sampled = (flags & 1) != 0;
  line = space == std::string_view::npos ? std::string_view{}
                                         : line.substr(0, space);
  return true;
}

/// If the final token of `line` is an epoch tag, parse it and strip it.
/// Same contract as peel_trace_tag: the prefix is reserved, so a malformed
/// or zero epoch is a parse error, and the caller peels the trace tag
/// first (wire order is `... @epoch=N @trace=T`).
bool peel_epoch_tag(std::string_view& line, std::uint64_t& epoch,
                    std::string* error) {
  const std::size_t space = line.find_last_of(' ');
  std::string_view token =
      space == std::string_view::npos ? line : line.substr(space + 1);
  if (token.substr(0, kEpochPrefix.size()) != kEpochPrefix) return true;
  token.remove_prefix(kEpochPrefix.size());
  std::uint64_t value = 0;
  if (token.empty() || !parse_int(token, value) || value == 0)
    return fail(error, "bad epoch tag");
  epoch = value;
  line = space == std::string_view::npos ? std::string_view{}
                                         : line.substr(0, space);
  return true;
}

/// Parse "<key> <flags> <exptime> <bytes>" and the following data block.
/// Returns false on malformed input. `tail` must start at the byte after
/// the command-line CRLF.
bool parse_storage_head(std::string_view& line, std::string_view tail,
                        std::string& key, std::uint32_t& flags,
                        std::string& data, std::string* error) {
  key = std::string(next_token(line));
  if (key.empty()) return fail(error, "missing key");
  std::uint32_t exptime = 0;
  std::size_t bytes = 0;
  if (!parse_int(next_token(line), flags)) return fail(error, "bad flags");
  if (!parse_int(next_token(line), exptime)) return fail(error, "bad exptime");
  if (!parse_int(next_token(line), bytes)) return fail(error, "bad bytes");
  if (tail.size() < bytes + kCrlf.size()) return fail(error, "short data");
  if (tail.substr(bytes, kCrlf.size()) != kCrlf)
    return fail(error, "data not CRLF-terminated");
  data.assign(tail.substr(0, bytes));
  return true;
}

}  // namespace

std::optional<Command> parse_command(std::string_view frame,
                                     std::string* error) {
  const std::size_t eol = frame.find(kCrlf);
  if (eol == std::string_view::npos) {
    fail(error, "missing CRLF");
    return std::nullopt;
  }
  std::string_view line = frame.substr(0, eol);
  const std::string_view tail = frame.substr(eol + kCrlf.size());
  // The trace tag, when present, is the final command-line token no matter
  // the verb; peeling it up front keeps every per-verb parser tag-blind.
  // The epoch tag sits immediately before it, so it is peeled second.
  TraceTag trace;
  std::uint64_t epoch = 0;
  if (!peel_trace_tag(line, trace, error)) return std::nullopt;
  if (!peel_epoch_tag(line, epoch, error)) return std::nullopt;
  if (epoch != 0) {
    // A trace tag surfacing only after the epoch peel means the tags were
    // sent in the wrong order; the prefix is reserved, so reject the frame
    // rather than read the tag as a key.
    TraceTag misordered;
    if (!peel_trace_tag(line, misordered, error)) return std::nullopt;
    if (misordered.present()) {
      fail(error, "trace tag must be the final token");
      return std::nullopt;
    }
  }
  const std::string_view verb = next_token(line);

  if (verb == "get" || verb == "gets") {
    GetCommand cmd;
    cmd.trace = trace;
    cmd.epoch = epoch;
    cmd.with_versions = verb == "gets";
    for (std::string_view key = next_token(line); !key.empty();
         key = next_token(line))
      cmd.keys.emplace_back(key);
    if (cmd.keys.empty()) {
      fail(error, "get with no keys");
      return std::nullopt;
    }
    return cmd;
  }
  if (verb == "set") {
    SetCommand cmd;
    cmd.trace = trace;
    cmd.epoch = epoch;
    // The optional "pin" extension rides after <bytes>; peel it off the
    // line before delegating (parse_storage_head consumes exactly 4 fields).
    if (!parse_storage_head(line, tail, cmd.key, cmd.flags, cmd.data, error))
      return std::nullopt;
    const std::string_view extra = next_token(line);
    if (extra == "pin")
      cmd.pin = true;
    else if (!extra.empty()) {
      fail(error, "unexpected token after set");
      return std::nullopt;
    }
    return cmd;
  }
  if (verb == "cas") {
    // cas layout: <key> <flags> <exptime> <bytes> <version>; reuse the
    // storage-head parser by reading the version token afterwards.
    CasCommand cmd;
    cmd.trace = trace;
    cmd.epoch = epoch;
    // parse_storage_head validates data length against <bytes>, which for
    // cas sits before the version token; split manually.
    std::string_view line_copy = line;
    const std::string_view key = next_token(line_copy);
    std::uint32_t flags = 0, exptime = 0;
    std::size_t bytes = 0;
    std::uint64_t version = 0;
    if (key.empty() || !parse_int(next_token(line_copy), flags) ||
        !parse_int(next_token(line_copy), exptime) ||
        !parse_int(next_token(line_copy), bytes) ||
        !parse_int(next_token(line_copy), version)) {
      fail(error, "bad cas header");
      return std::nullopt;
    }
    if (tail.size() < bytes + kCrlf.size() ||
        tail.substr(bytes, kCrlf.size()) != kCrlf) {
      fail(error, "bad cas data");
      return std::nullopt;
    }
    cmd.key = std::string(key);
    cmd.flags = flags;
    cmd.version = version;
    cmd.data.assign(tail.substr(0, bytes));
    return cmd;
  }
  if (verb == "delete") {
    DeleteCommand cmd;
    cmd.trace = trace;
    cmd.epoch = epoch;
    cmd.key = std::string(next_token(line));
    if (cmd.key.empty()) {
      fail(error, "delete with no key");
      return std::nullopt;
    }
    return cmd;
  }
  if (verb == "stats") {
    if (!next_token(line).empty()) {
      fail(error, "stats takes no arguments");
      return std::nullopt;
    }
    StatsCommand cmd;
    cmd.trace = trace;
    cmd.epoch = epoch;
    return cmd;
  }
  if (verb == "scan") {
    ScanCommand cmd;
    cmd.trace = trace;
    cmd.epoch = epoch;
    if (!parse_int(next_token(line), cmd.cursor) ||
        !parse_int(next_token(line), cmd.max_keys) || cmd.max_keys == 0 ||
        !next_token(line).empty()) {
      fail(error, "bad scan arguments");
      return std::nullopt;
    }
    return cmd;
  }
  if (verb == "epoch") {
    EpochCommand cmd;
    cmd.trace = trace;
    cmd.epoch = epoch;
    const std::string_view arg = next_token(line);
    if (!arg.empty() &&
        (!parse_int(arg, cmd.set_epoch) || cmd.set_epoch == 0)) {
      fail(error, "bad epoch argument");
      return std::nullopt;
    }
    if (!next_token(line).empty()) {
      fail(error, "unexpected token after epoch");
      return std::nullopt;
    }
    return cmd;
  }
  fail(error, "unknown verb");
  return std::nullopt;
}

namespace {

void append_tag_if_present(const TraceTag& trace, std::string& out) {
  if (!trace.present()) return;
  out += ' ';
  format_trace_tag(trace, out);
}

}  // namespace

void encode_get(const std::vector<std::string>& keys, bool with_versions,
                std::string& out, const TraceTag& trace) {
  out += with_versions ? "gets" : "get";
  for (const auto& k : keys) {
    out += ' ';
    out += k;
  }
  append_tag_if_present(trace, out);
  out += kCrlf;
}

void encode_set(std::string_view key, std::string_view data, bool pin,
                std::string& out, const TraceTag& trace) {
  out += "set ";
  out += key;
  out += " 0 0 ";
  out += std::to_string(data.size());
  if (pin) out += " pin";
  append_tag_if_present(trace, out);
  out += kCrlf;
  out += data;
  out += kCrlf;
}

void encode_cas(std::string_view key, std::string_view data,
                std::uint64_t version, std::string& out,
                const TraceTag& trace) {
  out += "cas ";
  out += key;
  out += " 0 0 ";
  out += std::to_string(data.size());
  out += ' ';
  out += std::to_string(version);
  append_tag_if_present(trace, out);
  out += kCrlf;
  out += data;
  out += kCrlf;
}

void encode_delete(std::string_view key, std::string& out,
                   const TraceTag& trace) {
  out += "delete ";
  out += key;
  append_tag_if_present(trace, out);
  out += kCrlf;
}

void encode_stats(std::string& out, const TraceTag& trace) {
  out += "stats";
  append_tag_if_present(trace, out);
  out += kCrlf;
}

void encode_scan(std::uint64_t cursor, std::uint32_t max_keys,
                 std::string& out, const TraceTag& trace) {
  out += "scan ";
  out += std::to_string(cursor);
  out += ' ';
  out += std::to_string(max_keys);
  append_tag_if_present(trace, out);
  out += kCrlf;
}

void encode_epoch(std::uint64_t set_epoch, std::string& out,
                  const TraceTag& trace) {
  out += "epoch";
  if (set_epoch != 0) {
    out += ' ';
    out += std::to_string(set_epoch);
  }
  append_tag_if_present(trace, out);
  out += kCrlf;
}

void append_trace_tag(std::string& frame, const TraceTag& trace) {
  if (!trace.present()) return;
  const std::size_t eol = frame.find(kCrlf);
  if (eol == std::string::npos) return;
  std::string token(1, ' ');
  format_trace_tag(trace, token);
  frame.insert(eol, token);
}

void append_epoch_tag(std::string& frame, std::uint64_t epoch) {
  if (epoch == 0) return;
  const std::size_t eol = frame.find(kCrlf);
  if (eol == std::string::npos) return;
  std::string token(1, ' ');
  token += kEpochPrefix;
  token += std::to_string(epoch);
  // Inserting at the CRLF means a later append_trace_tag (same insertion
  // point) lands after us, producing the wire order `@epoch=N @trace=T`.
  frame.insert(eol, token);
}

const TraceTag& command_trace(const Command& cmd) {
  return std::visit([](const auto& c) -> const TraceTag& { return c.trace; },
                    cmd);
}

std::uint64_t command_epoch(const Command& cmd) {
  return std::visit([](const auto& c) { return c.epoch; }, cmd);
}

void encode_values(const std::vector<Value>& values, bool with_versions,
                   std::string& out) {
  for (const Value& v : values) {
    out += "VALUE ";
    out += v.key;
    out += ' ';
    out += std::to_string(v.flags);
    out += ' ';
    out += std::to_string(v.data.size());
    if (with_versions) {
      out += ' ';
      out += std::to_string(v.version);
    }
    out += kCrlf;
    out += v.data;
    out += kCrlf;
  }
  out += "END";
  out += kCrlf;
}

void encode_simple(std::string_view token, std::string& out) {
  out += token;
  out += kCrlf;
}

std::optional<std::vector<Value>> parse_values(std::string_view frame,
                                               bool with_versions) {
  std::vector<Value> values;
  while (true) {
    const std::size_t eol = frame.find(kCrlf);
    if (eol == std::string_view::npos) return std::nullopt;
    std::string_view line = frame.substr(0, eol);
    frame.remove_prefix(eol + kCrlf.size());
    if (line == "END") return values;
    const std::string_view tag = next_token(line);
    if (tag != "VALUE") return std::nullopt;
    Value v;
    v.key = std::string(next_token(line));
    std::size_t bytes = 0;
    if (v.key.empty() || !parse_int(next_token(line), v.flags) ||
        !parse_int(next_token(line), bytes))
      return std::nullopt;
    if (with_versions && !parse_int(next_token(line), v.version))
      return std::nullopt;
    if (frame.size() < bytes + kCrlf.size() ||
        frame.substr(bytes, kCrlf.size()) != kCrlf)
      return std::nullopt;
    v.data.assign(frame.substr(0, bytes));
    frame.remove_prefix(bytes + kCrlf.size());
    values.push_back(std::move(v));
  }
}

std::string_view parse_simple(std::string_view frame) {
  const std::size_t eol = frame.find(kCrlf);
  return eol == std::string_view::npos ? frame : frame.substr(0, eol);
}

void encode_wrong_epoch(std::uint64_t server_epoch, std::string& out) {
  out += kWrongEpochToken;
  out += ' ';
  out += std::to_string(server_epoch);
  out += kCrlf;
}

std::optional<std::uint64_t> parse_wrong_epoch(std::string_view frame) {
  std::string_view line = parse_simple(frame);
  if (next_token(line) != kWrongEpochToken) return std::nullopt;
  std::uint64_t epoch = 0;
  if (!parse_int(next_token(line), epoch) || !next_token(line).empty())
    return std::nullopt;
  return epoch;
}

void encode_scan_page(const ScanPage& page, std::string& out) {
  std::vector<Value> values;
  values.reserve(page.entries.size() + 1);
  Value cursor;
  cursor.key = std::string(kScanCursorKey);
  cursor.data = std::to_string(page.next_cursor);
  values.push_back(std::move(cursor));
  values.insert(values.end(), page.entries.begin(), page.entries.end());
  encode_values(values, /*with_versions=*/false, out);
}

std::optional<ScanPage> parse_scan_page(std::string_view frame) {
  auto values = parse_values(frame, /*with_versions=*/false);
  if (!values || values->empty() || values->front().key != kScanCursorKey)
    return std::nullopt;
  ScanPage page;
  if (!parse_int(values->front().data, page.next_cursor)) return std::nullopt;
  page.entries.assign(std::make_move_iterator(values->begin() + 1),
                      std::make_move_iterator(values->end()));
  return page;
}

}  // namespace rnb::kv
