// Transport abstraction for the mini-memcached client.
//
// RnbKvClient only needs "send these bytes to server s, give me the
// response bytes"; everything else (placement, bundling, fallback) is
// transport-agnostic. Two implementations ship: LoopbackTransport
// (in-process, deterministic, used by simulators and most tests) and
// TcpClientTransport (real sockets, used by the proof-of-concept and the
// TCP micro-benchmarks).
#pragma once

#include <string>
#include <string_view>

#include "common/types.hpp"

namespace rnb::kv {

class KvTransport {
 public:
  virtual ~KvTransport() = default;

  virtual ServerId num_servers() const noexcept = 0;

  /// Send one request frame to server `s`; fill `response` with the
  /// complete response frame. Implementations must be safe for concurrent
  /// calls targeting different transports, and may serialize per server.
  virtual void roundtrip(ServerId s, std::string_view request,
                         std::string& response) = 0;
};

}  // namespace rnb::kv
