// Transport abstraction for the mini-memcached client.
//
// RnbKvClient only needs "send these bytes to server s, give me the
// response bytes"; everything else (placement, bundling, fallback) is
// transport-agnostic. Two implementations ship: LoopbackTransport
// (in-process, deterministic, used by simulators and most tests) and
// TcpClientTransport (real sockets, used by the proof-of-concept and the
// TCP micro-benchmarks).
#pragma once

#include <string>
#include <string_view>

#include "common/types.hpp"

namespace rnb::kv {

/// What happened to one roundtrip attempt, as far as the transport can
/// tell. kOk only promises that *some* bytes came back — the client still
/// validates the frame (a faulty link may deliver truncated garbage).
enum class TransportStatus : std::uint8_t {
  kOk,
  kDropped,     // request or response lost in flight
  kServerDown,  // endpoint refused / crashed
  kTimeout,     // transport-level wait expired
};

struct TransportResult {
  TransportStatus status = TransportStatus::kOk;
  /// Virtual (fault-injected) or measured seconds this attempt took; 0 for
  /// transports that model no time. Failure policies (hedging, deadlines)
  /// consume this instead of a wall clock so runs stay deterministic.
  double latency = 0.0;

  bool ok() const noexcept { return status == TransportStatus::kOk; }
};

const char* to_string(TransportStatus status) noexcept;

class KvTransport {
 public:
  virtual ~KvTransport() = default;

  virtual ServerId num_servers() const noexcept = 0;

  /// Send one request frame to server `s`; fill `response` with the
  /// complete response frame and report the attempt's outcome. On any
  /// non-kOk status `response` is cleared. Implementations must be safe for
  /// concurrent calls targeting different transports, and may serialize per
  /// server.
  virtual TransportResult roundtrip(ServerId s, std::string_view request,
                                    std::string& response) = 0;
};

}  // namespace rnb::kv
