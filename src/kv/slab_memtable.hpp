// Slab-backed key-value table with per-size-class LRU — memcached's actual
// storage engine shape, as opposed to MemTable's simplified global-LRU
// byte budget.
//
// Items (key bytes + value bytes) live in slab chunks; eviction is
// *per size class*: when class c has no free chunk and the page budget is
// spent, the LRU unpinned item OF CLASS c is evicted — items in other
// classes are untouchable (calcification). Pinned items (distinguished
// copies) are never evicted but do occupy chunks; a set() that cannot evict
// anything (class full of pinned items) fails, surfacing the operational
// hazard of pinning too much.
//
// API mirrors MemTable so BasicKvServer can host either engine.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "cache/lru_cache.hpp"  // CacheStats
#include "kv/memtable.hpp"      // TransparentStringHash
#include "kv/slab.hpp"

namespace rnb::kv {

class SlabMemTable {
 public:
  /// Engine identity for observability (slow-log entries, stats labels).
  static constexpr const char* kEngineName = "slab";

  explicit SlabMemTable(const SlabConfig& config);

  struct GetResult {
    std::string value;
    std::uint64_t version;
  };

  /// Store (insert or overwrite). Fails (false) if the item is larger than
  /// the biggest chunk, or its size class cannot free a chunk (budget spent
  /// and every chunk of the class holds a pinned item).
  bool set(std::string_view key, std::string_view value, bool pinned = false);

  std::optional<GetResult> get(std::string_view key);
  std::optional<GetResult> peek(std::string_view key) const;

  /// Mutation-free read attempt (same contract as MemTable::fast_get):
  /// resolves pinned entries, entries already at their class's MRU
  /// position, and misses; kNeedsRecency otherwise. Never touches stats().
  MemTable::FastGetOutcome fast_get(std::string_view key,
                                    GetResult& out) const;

  MemTable::CasOutcome cas(std::string_view key, std::uint64_t expected,
                           std::string_view value);

  bool erase(std::string_view key);
  bool contains(std::string_view key) const;

  std::size_t entries() const noexcept { return table_.size(); }
  const CacheStats& stats() const noexcept { return stats_; }
  const SlabAllocator& slabs() const noexcept { return slabs_; }

 private:
  struct Entry {
    SlabRef chunk;
    std::uint32_t key_bytes;
    std::uint32_t value_bytes;
    std::uint64_t version;
    bool pinned;
    /// Position in the owning class's LRU list (valid iff !pinned).
    std::list<const std::string*>::iterator lru_pos;

    std::size_t item_bytes() const noexcept {
      return std::size_t{key_bytes} + value_bytes;
    }
    std::string_view value_view() const noexcept {
      return {chunk.data + key_bytes, value_bytes};
    }
  };

  /// Acquire a chunk for `bytes`, evicting same-class LRU items as needed.
  std::optional<SlabRef> acquire_chunk(std::size_t bytes);

  /// Remove an entry and release its chunk.
  void destroy(const std::string& key, Entry& entry);

  SlabAllocator slabs_;
  std::unordered_map<std::string, Entry, TransparentStringHash,
                     std::equal_to<>>
      table_;
  /// Per size class, keys in MRU->LRU order. Pointers into table_ keys stay
  /// valid: unordered_map never invalidates references on rehash.
  std::vector<std::list<const std::string*>> class_lru_;
  std::uint64_t next_version_ = 1;
  CacheStats stats_;
};

}  // namespace rnb::kv
