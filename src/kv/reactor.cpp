#include "kv/reactor.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace rnb::kv {
namespace {

constexpr std::size_t kMaxFlushChunks = 64;  // matches EpollPoller's iovec cap

}  // namespace

EventLoop::EventLoop(PollSource& poll, RequestSink sink, Config config)
    : poll_(poll), sink_(sink), config_(config) {
  RNB_REQUIRE(sink_.valid());
  read_chunk_.resize(config_.read_chunk);
  if (config_.listen_handle >= 0)
    poll_.add(config_.listen_handle, /*want_read=*/true,
              /*want_write=*/false);
}

EventLoop::~EventLoop() { close_all(); }

void EventLoop::adopt(int handle) {
  auto conn = std::make_unique<Connection>();
  conn->handle = handle;
  poll_.add(handle, /*want_read=*/true, /*want_write=*/false);
  connections_.emplace(handle, std::move(conn));
  accepted_.fetch_add(1, std::memory_order_relaxed);
  active_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t EventLoop::step(int timeout_ms) {
  const std::size_t n = poll_.wait(events_, timeout_ms);
  stats_.record_batch(n);
  for (const PollEvent& event : events_) {
    if (event.handle == config_.listen_handle) {
      do_accept();
      continue;
    }
    // An earlier event in this batch may have destroyed the connection
    // (e.g. a reset seen while its write event was still queued).
    if (connections_.find(event.handle) != connections_.end())
      on_event(event);
  }
  return n;
}

void EventLoop::run() {
  while (!stop_.load(std::memory_order_acquire)) step(/*timeout_ms=*/-1);
}

void EventLoop::request_stop() {
  stop_.store(true, std::memory_order_release);
  poll_.interrupt();
}

void EventLoop::close_all() {
  for (auto& [handle, conn] : connections_) {
    stats_.sub_queued(conn->outbox_bytes);
    poll_.close(handle);
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
  connections_.clear();
}

void EventLoop::do_accept() {
  for (;;) {
    const int handle = poll_.accept(config_.listen_handle);
    if (handle == -1) return;  // drained the backlog
    if (handle < 0) {
      // Fatal acceptor error (EMFILE and friends): count it and retry on
      // the next readiness report rather than wedging the whole loop.
      accept_errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    adopt(handle);
  }
}

void EventLoop::on_event(const PollEvent& event) {
  Connection& conn = *connections_.at(event.handle);
  if (event.readable || event.hangup) {
    on_readable(conn);
    return;  // on_readable flushes; conn may be gone
  }
  if (event.writable) {
    if (!flush(conn)) return;
    if (conn.draining && conn.outbox.empty())
      destroy(conn, /*reset=*/false);
  }
}

void EventLoop::on_readable(Connection& conn) {
  for (std::size_t reads = 0; reads < config_.max_reads_per_event;
       ++reads) {
    const IoResult r =
        poll_.read(conn.handle, read_chunk_.data(), read_chunk_.size());
    if (r.status == IoStatus::kOk) {
      conn.splitter.feed(std::string_view(read_chunk_.data(), r.bytes));
      continue;
    }
    if (r.status == IoStatus::kWouldBlock) break;
    if (r.status == IoStatus::kEof) {
      conn.draining = true;
      break;
    }
    // Reset mid-anything: whatever sits torn in the splitter is
    // abandoned, queued responses die with the socket.
    destroy(conn, /*reset=*/true);
    return;
  }
  process_frames(conn);
  if (!flush(conn)) return;
  if (conn.draining && conn.outbox.empty()) destroy(conn, /*reset=*/false);
}

void EventLoop::process_frames(Connection& conn) {
  while (conn.splitter.next_frame(frame_)) {
    std::string response = acquire_buffer();
    HandleInfo info;
    // The same parse > dispatch{shard} > handle > format span tree and
    // trace-tag adoption as every other transport: it all lives inside
    // BasicKvServer::handle.
    sink_.handle(frame_, response, &info);
    conn.outbox_bytes += response.size();
    stats_.add_queued(response.size());
    conn.outbox.push_back(OutEntry{std::move(response), 0, info.trace});
    responses_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool EventLoop::flush(Connection& conn) {
  obs::Tracer* const tracer = obs::Tracer::current();
  while (!conn.outbox.empty()) {
    std::string_view chunks[kMaxFlushChunks];
    std::size_t count = 0;
    std::size_t offered = 0;
    for (const OutEntry& entry : conn.outbox) {
      if (count == kMaxFlushChunks) break;
      if (entry.bytes.size() == entry.offset) continue;
      chunks[count] = std::string_view(entry.bytes).substr(entry.offset);
      offered += chunks[count].size();
      ++count;
    }
    if (offered == 0) {
      // Only zero-length responses queued (cannot happen today, but keep
      // the loop total): drop them and carry on.
      conn.outbox.clear();
      break;
    }
    const std::uint64_t t0 = tracer != nullptr ? tracer->now() : 0;
    const IoResult r =
        poll_.writev(conn.handle, std::span(chunks, count));
    if (r.status == IoStatus::kWouldBlock ||
        (r.status == IoStatus::kOk && r.bytes == 0)) {
      if (!conn.want_write) {
        conn.want_write = true;
        poll_.modify(conn.handle, /*want_read=*/true, /*want_write=*/true);
      }
      return true;
    }
    if (r.status != IoStatus::kOk) {
      destroy(conn, /*reset=*/true);
      return false;
    }
    const std::uint64_t t1 = tracer != nullptr ? tracer->now() : 0;
    stats_.sub_queued(r.bytes);
    conn.outbox_bytes -= r.bytes;
    std::size_t remaining = r.bytes;
    while (remaining > 0 && !conn.outbox.empty()) {
      OutEntry& entry = conn.outbox.front();
      const std::size_t pending = entry.bytes.size() - entry.offset;
      if (remaining < pending) {
        entry.offset += remaining;
        remaining = 0;
        break;
      }
      remaining -= pending;
      // The response has fully left the socket: attribute the batched
      // write to its trace, mirroring the thread-server's per-response
      // "write" span (a sibling of the server transaction span).
      if (tracer != nullptr) {
        obs::ScopedTraceContext adopt({entry.trace.trace_id,
                                       entry.trace.span_id,
                                       entry.trace.sampled});
        tracer->complete(
            "write", "server", t0, t1 - t0,
            {{"bytes", static_cast<std::int64_t>(entry.bytes.size())}});
      }
      release_buffer(std::move(entry.bytes));
      conn.outbox.pop_front();
    }
    if (r.bytes < offered) {
      // Short write: the kernel (or script) refused the rest for now.
      if (!conn.want_write) {
        conn.want_write = true;
        poll_.modify(conn.handle, /*want_read=*/true, /*want_write=*/true);
      }
      return true;
    }
  }
  if (conn.want_write) {
    conn.want_write = false;
    poll_.modify(conn.handle, /*want_read=*/true, /*want_write=*/false);
  }
  return true;
}

void EventLoop::destroy(Connection& conn, bool reset) {
  const int handle = conn.handle;
  stats_.sub_queued(conn.outbox_bytes);
  if (reset) resets_.fetch_add(1, std::memory_order_relaxed);
  poll_.close(handle);
  active_.fetch_sub(1, std::memory_order_relaxed);
  connections_.erase(handle);  // invalidates conn
}

std::string EventLoop::acquire_buffer() {
  if (buffer_pool_.empty()) return std::string();
  std::string buffer = std::move(buffer_pool_.back());
  buffer_pool_.pop_back();
  return buffer;
}

void EventLoop::release_buffer(std::string&& buffer) {
  buffer.clear();
  buffer_pool_.push_back(std::move(buffer));
}

ReactorServerCore::ReactorServerCore(RequestSink sink, std::uint16_t port) {
  RNB_REQUIRE(sink.valid());
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) throw std::runtime_error("reactor: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("reactor: bind() failed");
  }
  if (::listen(listen_fd_, SOMAXCONN) < 0) {
    ::close(listen_fd_);
    throw std::runtime_error("reactor: listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  EventLoop::Config config;
  config.listen_handle = listen_fd_;
  loop_ = std::make_unique<EventLoop>(poller_, sink, config);
}

ReactorServerCore::~ReactorServerCore() { shutdown(); }

void ReactorServerCore::start() {
  loop_thread_ = std::thread([this] { loop_->run(); });
}

void ReactorServerCore::shutdown() {
  if (stopping_.exchange(true)) return;
  loop_->request_stop();
  if (loop_thread_.joinable()) loop_thread_.join();
  loop_->close_all();
  poller_.close(listen_fd_);
}

}  // namespace rnb::kv
