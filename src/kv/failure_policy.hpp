// Failure policy and the per-transaction exchange engine shared by every
// wire client.
//
// RnbKvClient introduced the policy (bounded retries with decorrelated
// jitter, quantile hedging, virtual deadlines) and the distributed serving
// tier's KvClusterClient executes the same strategy over its ClusterView
// placement, so the machinery lives here once: KvExchange owns the jitter
// stream, the recent-latency window, and the lifetime counters, and runs
// one transaction end to end — trace-tagging the frame, applying retries
// and hedges, validating the response. All timing is virtual (transports
// report each roundtrip's latency and the engine accumulates it, plus
// computed backoff waits, into the caller's elapsed total), so runs stay
// reproducible under fault injection.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "kv/kv_transport.hpp"
#include "kv/protocol.hpp"

namespace rnb::kv {

/// Failure policy for every client operation. All timing is virtual: the
/// transport reports each roundtrip's latency and the client accumulates it
/// (plus computed backoff waits) into a per-operation elapsed total — no
/// wall clock is ever read, so runs are reproducible under fault injection.
struct KvFailurePolicy {
  /// Total sends per transaction, first try included. 1 disables retries.
  std::uint32_t max_attempts = 3;
  /// Decorrelated-jitter exponential backoff (seeded, deterministic):
  /// wait_k = min(max_backoff, uniform(base_backoff, 3 * wait_{k-1})).
  double base_backoff = 1e-4;
  double max_backoff = 5e-2;
  /// Per-operation virtual deadline in seconds; 0 disables it. When the
  /// accumulated elapsed time crosses the deadline, the operation stops
  /// issuing transactions and reports what it has.
  double deadline = 0.0;
  /// Hedged duplicate sends: when a delivered response was slower than the
  /// `hedge_quantile` of recently observed latencies, a duplicate of the
  /// same request is issued and the faster answer wins. Emulates "send a
  /// backup request after the p-th percentile delay" synchronously: the
  /// winner's cost is min(primary, threshold + hedge latency).
  bool hedging = false;
  double hedge_quantile = 0.95;
  /// Observed-latency window feeding the hedge threshold; hedging stays
  /// idle until the window holds at least 16 samples.
  std::size_t latency_window = 128;
  /// Cover re-planning rounds in multi_get when a server eats all attempts.
  std::uint32_t max_recover_rounds = 2;
  /// Seed for the backoff jitter stream (independent of placement).
  std::uint64_t rng_seed = 0xb0ffULL;
};

/// Cumulative failure-handling counters across a client's lifetime.
struct KvFailureStats {
  std::uint64_t attempts = 0;       // every transaction send
  std::uint64_t retries = 0;        // attempts beyond each first send
  std::uint64_t transport_errors = 0;  // dropped / down / timeout results
  std::uint64_t malformed_responses = 0;  // delivered but unparseable
  std::uint64_t empty_responses = 0;  // delivered zero-byte (peer died)
  std::uint64_t hedged_sends = 0;   // duplicate sends issued
  std::uint64_t hedge_wins = 0;     // duplicates that beat the primary
  std::uint64_t deadline_misses = 0;  // operations cut short
  std::uint64_t recover_rounds = 0;   // multi_get cover re-plans
};

/// One transaction with the failure policy applied, reusable by any client
/// built over a KvTransport. Not thread-safe: one KvExchange per client,
/// one client per worker thread (the web-tier model).
class KvExchange {
 public:
  KvExchange(KvTransport& transport, const KvFailurePolicy& policy);

  /// Run one transaction: bounded retries with decorrelated-jitter backoff,
  /// hedged duplicate on a slow response, and virtual-deadline accounting
  /// via `elapsed`. The frame in `request` is trace-tagged per attempt when
  /// a tracer is installed (a "transaction" span wraps the whole exchange;
  /// inside a traced operation it joins that trace, otherwise it roots its
  /// own). Success means the response in `response` was delivered, is
  /// non-empty (a zero-byte "response" is a dead peer, never a valid
  /// frame), and passes `valid` when given. `allow_hedge` must be false
  /// for non-idempotent frames (CAS): a hedged duplicate that loses the
  /// race would report EXISTS for its own twin.
  bool exchange(ServerId server, std::string& request, std::string& response,
                double& elapsed,
                const std::function<bool(const std::string&)>& valid = {},
                bool allow_hedge = true);

  /// exchange() whose validity check is "parses as a VALUE frame" — a
  /// truncated frame counts as a transport error and is retried. Returns
  /// the parsed values on success.
  std::optional<std::vector<Value>> exchange_values(ServerId server,
                                                    std::string& request,
                                                    std::string& response,
                                                    bool with_versions,
                                                    double& elapsed);

  /// True when `elapsed` crossed the policy deadline. Does not count the
  /// miss — callers account deadline_misses per operation, not per check.
  bool deadline_exceeded(double elapsed) const;

  const KvFailurePolicy& policy() const noexcept { return policy_; }
  KvFailureStats& stats() noexcept { return stats_; }
  const KvFailureStats& stats() const noexcept { return stats_; }

 private:
  double hedge_threshold() const;
  void observe_latency(double latency);

  KvTransport& transport_;
  KvFailurePolicy policy_;
  // Failure-policy state: jitter stream, recent-latency ring, counters.
  Xoshiro256 backoff_rng_;
  std::vector<double> latency_window_;
  std::size_t latency_next_ = 0;
  bool latency_full_ = false;
  KvFailureStats stats_;
};

}  // namespace rnb::kv
