// Sharded storage engine: S independent engine shards behind striped
// shared_mutexes — the concurrent serving path.
//
// The single-mutex dispatch of the original mini-memcached serializes every
// verb, so multi-core load generators measure lock convoy instead of the
// paper's per-transaction CPU cost. This wrapper partitions the key space
// across S = next_pow2(hw_threads) shards by the same seeded key hash the
// rest of the stack uses (FNV-1a, decorrelated with fmix64 so shard index,
// hash-table bucket, and replica placement are pairwise independent). Each
// shard owns a complete engine — its own table, LRU chain (or slab arena +
// per-class LRUs), and pinned set — plus one obs::InstrumentedSharedMutex:
//   shared     get fast path (pinned / already-MRU / miss), peek, contains
//   exclusive  set, cas, erase, and gets that must move an LRU position
//
// Fidelity: per-shard LRU over uniformly hashed keys behaves like the
// global LRU at these cache sizes (Ji, Quan & Tan, arXiv:1801.02436 — the
// asymptotic equivalence behind every production memcached deployment), and
// with one shard the wrapper is byte-for-byte the wrapped engine: the
// determinism suite pins single-threaded responses to the unsharded
// baseline.
//
// Concurrency contract: individual operations are linearizable per key
// (each key lives in exactly one shard). multi_get takes each involved
// shard's lock once, so a batch is atomic per shard but NOT across shards —
// exactly the semantics a multi-get spread over independent servers already
// has, which is why the paper's transaction accounting is unaffected.
#pragma once

#include <atomic>
#include <bit>
#include <concepts>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cache/lru_cache.hpp"  // CacheStats
#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/sharding.hpp"
#include "kv/memtable.hpp"
#include "kv/slab_memtable.hpp"
#include "kv/swiss_memtable.hpp"
#include "obs/contention.hpp"

namespace rnb::kv {

using rnb::resolve_shard_count;

template <typename Engine>
class BasicShardedTable {
 public:
  using GetResult = typename Engine::GetResult;
  using CasOutcome = MemTable::CasOutcome;

  /// Sharding is transparent to observability: a sharded store reports
  /// its engine's identity.
  static constexpr const char* kEngineName = Engine::kEngineName;

  /// Engines exposing *_hashed overloads (SwissMemTable) receive the raw
  /// FNV-1a key hash the router already computed, so each key is hashed
  /// exactly once per operation — routing, control bytes, and equality
  /// prefilter all derive from that one pass over the key bytes.
  static constexpr bool kHashedOps =
      requires(Engine& e, const Engine& ce, typename Engine::GetResult& r) {
        ce.fast_get_hashed(std::uint64_t{}, std::string_view{}, r);
        e.get_hashed(std::uint64_t{}, std::string_view{});
        e.set_hashed(std::uint64_t{}, std::string_view{}, std::string_view{},
                     bool{});
        e.cas_hashed(std::uint64_t{}, std::string_view{}, std::uint64_t{},
                     std::string_view{});
        e.erase_hashed(std::uint64_t{}, std::string_view{});
        ce.contains_hashed(std::uint64_t{}, std::string_view{});
      };

  /// Probe-behaviour counters are surfaced only for engines that track them.
  static constexpr bool kProbeStats = requires(const Engine& ce) {
    { ce.swiss_stats() } -> std::same_as<SwissStats>;
  };

  /// `num_shards` must already be resolved (power of two >= 1); every shard
  /// is constructed from the same `per_shard_args` — callers divide budgets
  /// before constructing (see ShardedMemTable / ShardedSlabMemTable).
  template <typename... Args>
  explicit BasicShardedTable(std::size_t num_shards,
                             const Args&... per_shard_args) {
    RNB_REQUIRE(num_shards >= 1 && std::has_single_bit(num_shards));
    shards_.reserve(num_shards);
    for (std::size_t i = 0; i < num_shards; ++i)
      shards_.push_back(std::make_unique<Shard>(per_shard_args...));
  }

  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Pure function of the key bytes: deterministic across processes and
  /// independent of both placement (seeded FNV-1a into the ring) and the
  /// hash table's bucket index (raw FNV-1a) thanks to the fmix64 mix.
  std::size_t shard_index(std::string_view key) const noexcept {
    return shard_index_of(fnv1a64(key));
  }
  std::size_t shard_index_of(std::uint64_t key_hash) const noexcept {
    return fmix64(key_hash) & (shards_.size() - 1);
  }

  bool set(std::string_view key, std::string_view value, bool pinned = false) {
    const std::uint64_t h = fnv1a64(key);
    Shard& s = *shards_[shard_index_of(h)];
    const std::unique_lock lock(s.mu);
    if constexpr (kHashedOps)
      return s.engine.set_hashed(h, key, value, pinned);
    else
      return s.engine.set(key, value, pinned);
  }

  std::optional<GetResult> get(std::string_view key) {
    const std::uint64_t h = fnv1a64(key);
    Shard& s = *shards_[shard_index_of(h)];
    {
      const std::shared_lock lock(s.mu);
      GetResult out;
      switch (engine_fast_get(s.engine, h, key, out)) {
        case MemTable::FastGetOutcome::kHit:
          s.fast_hits.fetch_add(1, std::memory_order_relaxed);
          return out;
        case MemTable::FastGetOutcome::kMiss:
          s.fast_misses.fetch_add(1, std::memory_order_relaxed);
          return std::nullopt;
        case MemTable::FastGetOutcome::kNeedsRecency:
          break;  // escalate below
      }
    }
    const std::unique_lock lock(s.mu);
    if constexpr (kHashedOps)
      return s.engine.get_hashed(h, key);
    else
      return s.engine.get(key);
  }

  std::optional<GetResult> peek(std::string_view key) const {
    const Shard& s = shard(key);
    const std::shared_lock lock(s.mu);
    return s.engine.peek(key);
  }

  /// Batched read: fills `out` (resized; same order as `keys`, nullopt =
  /// miss) taking each involved shard's lock exactly once. Keys of one
  /// shard are processed in request order under the shared lock until the
  /// first entry that needs an LRU move, then the remainder under the
  /// exclusive lock — so a single-threaded batch leaves the LRU chain in
  /// exactly the state the sequential per-key loop would.
  void multi_get(std::span<const std::string> keys,
                 std::vector<std::optional<GetResult>>& out) {
    out.clear();
    out.resize(keys.size());
    const std::size_t n = shards_.size();
    if (keys.size() == 1) {
      out[0] = get(keys[0]);
      return;
    }
    // Per-thread scratch: a pipelined connection issues thousands of
    // batches, so the sort buffers are reused instead of reallocated.
    Scratch& sc = scratch();
    sc.hashes.resize(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
      sc.hashes[i] = fnv1a64(keys[i]);
    if (n == 1) {
      // Single shard: the whole batch is one group in request order.
      sc.order.resize(keys.size());
      for (std::size_t i = 0; i < keys.size(); ++i)
        sc.order[i] = static_cast<std::uint32_t>(i);
      resolve_group(*shards_[0], keys, sc.hashes, sc.order, out);
      return;
    }
    // Stable counting sort of key indices by shard: per-shard sub-batches
    // keep their request order (the LRU-equivalence argument above).
    sc.shard_of.resize(keys.size());
    sc.begin.assign(n + 1, 0);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      sc.shard_of[i] = static_cast<std::uint32_t>(shard_index_of(sc.hashes[i]));
      ++sc.begin[sc.shard_of[i] + 1];
    }
    for (std::size_t s = 0; s < n; ++s) sc.begin[s + 1] += sc.begin[s];
    sc.order.resize(keys.size());
    sc.cursor.assign(sc.begin.begin(), sc.begin.end() - 1);
    for (std::size_t i = 0; i < keys.size(); ++i)
      sc.order[sc.cursor[sc.shard_of[i]]++] = static_cast<std::uint32_t>(i);
    for (std::size_t s = 0; s < n; ++s) {
      if (sc.begin[s] == sc.begin[s + 1]) continue;
      const std::span<const std::uint32_t> group(
          sc.order.data() + sc.begin[s], sc.begin[s + 1] - sc.begin[s]);
      resolve_group(*shards_[s], keys, sc.hashes, group, out);
    }
  }

  CasOutcome cas(std::string_view key, std::uint64_t expected,
                 std::string_view value) {
    const std::uint64_t h = fnv1a64(key);
    Shard& s = *shards_[shard_index_of(h)];
    const std::unique_lock lock(s.mu);
    if constexpr (kHashedOps)
      return s.engine.cas_hashed(h, key, expected, value);
    else
      return s.engine.cas(key, expected, value);
  }

  bool erase(std::string_view key) {
    const std::uint64_t h = fnv1a64(key);
    Shard& s = *shards_[shard_index_of(h)];
    const std::unique_lock lock(s.mu);
    if constexpr (kHashedOps)
      return s.engine.erase_hashed(h, key);
    else
      return s.engine.erase(key);
  }

  bool contains(std::string_view key) const {
    const std::uint64_t h = fnv1a64(key);
    const Shard& s = *shards_[shard_index_of(h)];
    const std::shared_lock lock(s.mu);
    if constexpr (kHashedOps)
      return s.engine.contains_hashed(h, key);
    else
      return s.engine.contains(key);
  }

  /// Migration paging across shards, available only when the wrapped engine
  /// can scan (SlabMemTable engines lack it; the server answers
  /// SERVER_ERROR there). Cursor layout: shard index in the top 16 bits,
  /// the shard's own skip-count cursor below — so a page boundary resumes
  /// inside the right shard without global coordination. Each shard is read
  /// under its shared lock; the page is weakly consistent across shards,
  /// which migration's idempotent re-sets tolerate.
  std::uint64_t scan(std::uint64_t cursor, std::size_t max_keys,
                     std::vector<ScanEntry>& out) const
    requires requires(const Engine& e, std::vector<ScanEntry>& v) {
      e.scan(std::uint64_t{}, std::size_t{}, v);
    }
  {
    constexpr std::uint64_t kShardShift = 48;
    constexpr std::uint64_t kOffsetMask =
        (std::uint64_t{1} << kShardShift) - 1;
    std::size_t shard = static_cast<std::size_t>(cursor >> kShardShift);
    std::uint64_t offset = cursor & kOffsetMask;
    const std::size_t want = out.size() + max_keys;
    while (shard < shards_.size()) {
      if (out.size() >= want)
        return (static_cast<std::uint64_t>(shard) << kShardShift) | offset;
      std::uint64_t next = 0;
      {
        const std::shared_lock lock(shards_[shard]->mu);
        next = shards_[shard]->engine.scan(offset, want - out.size(), out);
      }
      if (next != 0)
        return (static_cast<std::uint64_t>(shard) << kShardShift) | next;
      ++shard;
      offset = 0;
    }
    return 0;
  }

  std::size_t entries() const noexcept {
    std::size_t total = 0;
    for (const auto& s : shards_) {
      const std::shared_lock lock(s->mu);
      total += s->engine.entries();
    }
    return total;
  }

  /// Aggregate engine stats plus the wrapper's fast-path hits/misses, so
  /// totals match what the unsharded engine would have counted for the
  /// same operation sequence.
  CacheStats stats() const {
    CacheStats total;
    for (const auto& s : shards_) {
      const std::shared_lock lock(s->mu);
      const CacheStats& st = s->engine.stats();
      total.hits += st.hits + s->fast_hits.load(std::memory_order_relaxed);
      total.misses +=
          st.misses + s->fast_misses.load(std::memory_order_relaxed);
      total.insertions += st.insertions;
      total.evictions += st.evictions;
    }
    return total;
  }

  /// Per-shard observability snapshot (the stats verb expositions these as
  /// shard-labelled Prometheus series; snapshots merge associatively).
  struct ShardSnapshot {
    obs::ContentionSnapshot lock;
    std::uint64_t fast_hits = 0;
    std::uint64_t fast_misses = 0;
    CacheStats engine_stats;
    std::size_t entries = 0;
    /// Filled (and `has_probe` set) only for probe-counting engines.
    bool has_probe = false;
    SwissStats probe;
  };

  ShardSnapshot shard_snapshot(std::size_t index) const {
    const Shard& s = *shards_[index];
    ShardSnapshot snap;
    snap.lock = s.mu.counters();
    snap.fast_hits = s.fast_hits.load(std::memory_order_relaxed);
    snap.fast_misses = s.fast_misses.load(std::memory_order_relaxed);
    const std::shared_lock lock(s.mu);
    snap.engine_stats = s.engine.stats();
    snap.entries = s.engine.entries();
    if constexpr (kProbeStats) {
      snap.has_probe = true;
      snap.probe = s.engine.swiss_stats();
    }
    return snap;
  }

  /// Aggregate lock counters across all shards.
  obs::ContentionSnapshot lock_counters() const {
    obs::ContentionSnapshot total;
    for (const auto& s : shards_) total += s->mu.counters();
    return total;
  }

  /// Visit each shard's engine under its shared lock (setup / aggregation —
  /// not a hot path).
  template <typename Fn>
  void for_each_engine(Fn&& fn) const {
    for (const auto& s : shards_) {
      const std::shared_lock lock(s->mu);
      fn(s->engine);
    }
  }

 private:
  // One cache line per shard header so neighbouring shards' lock words and
  // fast-path counters never false-share.
  struct alignas(64) Shard {
    template <typename... Args>
    explicit Shard(const Args&... args) : engine(args...) {}

    mutable obs::InstrumentedSharedMutex mu;
    std::atomic<std::uint64_t> fast_hits{0};
    std::atomic<std::uint64_t> fast_misses{0};
    Engine engine;
  };

  Shard& shard(std::string_view key) noexcept {
    return *shards_[shard_index(key)];
  }
  const Shard& shard(std::string_view key) const noexcept {
    return *shards_[shard_index(key)];
  }

  static MemTable::FastGetOutcome engine_fast_get(const Engine& e,
                                                  std::uint64_t hash,
                                                  std::string_view key,
                                                  GetResult& out) {
    if constexpr (kHashedOps)
      return e.fast_get_hashed(hash, key, out);
    else
      return e.fast_get(key, out);
  }

  /// One shard's sub-batch: request order under the shared lock until the
  /// first entry needing an LRU move, remainder under the exclusive lock —
  /// at most two lock acquisitions per shard per batch, and a
  /// single-threaded batch leaves the LRU chain exactly as the sequential
  /// per-key loop would.
  void resolve_group(Shard& s, std::span<const std::string> keys,
                     std::span<const std::uint64_t> hashes,
                     std::span<const std::uint32_t> group,
                     std::vector<std::optional<GetResult>>& out) {
    std::size_t i = 0;
    {
      const std::shared_lock lock(s.mu);
      for (; i < group.size(); ++i) {
        GetResult r;
        const auto outcome =
            engine_fast_get(s.engine, hashes[group[i]], keys[group[i]], r);
        if (outcome == MemTable::FastGetOutcome::kNeedsRecency) break;
        if (outcome == MemTable::FastGetOutcome::kHit) {
          s.fast_hits.fetch_add(1, std::memory_order_relaxed);
          out[group[i]] = std::move(r);
        } else {
          s.fast_misses.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (i == group.size()) return;
    }
    const std::unique_lock lock(s.mu);
    for (; i < group.size(); ++i) {
      if constexpr (kHashedOps)
        out[group[i]] = s.engine.get_hashed(hashes[group[i]], keys[group[i]]);
      else
        out[group[i]] = s.engine.get(keys[group[i]]);
    }
  }

  struct Scratch {
    std::vector<std::uint64_t> hashes;
    std::vector<std::uint32_t> shard_of;
    std::vector<std::uint32_t> begin;
    std::vector<std::uint32_t> cursor;
    std::vector<std::uint32_t> order;
  };
  static Scratch& scratch() {
    thread_local Scratch sc;
    return sc;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Byte-budget MemTable shards; the total budget splits evenly (uniform
/// key hashing keeps per-shard working sets balanced, so per-shard LRU
/// approximates the global LRU — the arXiv:1801.02436 argument).
class ShardedMemTable : public BasicShardedTable<MemTable> {
 public:
  explicit ShardedMemTable(std::size_t byte_budget, std::size_t num_shards = 0)
      : ShardedMemTable(byte_budget, resolve_shard_count(num_shards), 0) {}

  /// Sum of the per-shard budgets (total rounded down to a multiple of the
  /// shard count).
  std::size_t byte_budget() const noexcept {
    std::size_t total = 0;
    for_each_engine([&](const MemTable& t) { total += t.byte_budget(); });
    return total;
  }

 private:
  ShardedMemTable(std::size_t byte_budget, std::size_t resolved, int)
      : BasicShardedTable<MemTable>(resolved, byte_budget / resolved) {}
};

/// Swiss-engine shards: same even byte-budget split as ShardedMemTable,
/// with each shard owning its own slab arena (sized off its budget slice).
/// The wrapper's hashed-op dispatch kicks in automatically, so every key is
/// hashed once for routing + probing combined.
class ShardedSwissMemTable : public BasicShardedTable<SwissMemTable> {
 public:
  explicit ShardedSwissMemTable(std::size_t byte_budget,
                                std::size_t num_shards = 0)
      : ShardedSwissMemTable(byte_budget, resolve_shard_count(num_shards), 0) {}

  /// Sum of the per-shard budgets (total rounded down to a multiple of the
  /// shard count).
  std::size_t byte_budget() const noexcept {
    std::size_t total = 0;
    for_each_engine([&](const SwissMemTable& t) { total += t.byte_budget(); });
    return total;
  }

 private:
  ShardedSwissMemTable(std::size_t byte_budget, std::size_t resolved, int)
      : BasicShardedTable<SwissMemTable>(resolved, byte_budget / resolved) {}
};

/// Slab-engine shards: each shard gets its own arena with 1/S of the page
/// budget (class geometry unchanged).
class ShardedSlabMemTable : public BasicShardedTable<SlabMemTable> {
 public:
  explicit ShardedSlabMemTable(const SlabConfig& config,
                               std::size_t num_shards = 0)
      : ShardedSlabMemTable(config, resolve_shard_count(num_shards), 0) {}

 private:
  static SlabConfig per_shard(SlabConfig config, std::size_t shards) {
    config.total_bytes /= shards;
    return config;
  }
  ShardedSlabMemTable(const SlabConfig& config, std::size_t resolved, int)
      : BasicShardedTable<SlabMemTable>(resolved, per_shard(config, resolved)) {
  }
};

}  // namespace rnb::kv
