// Request-merging proxy — Section III-E's mechanism as a kv component.
//
// Moxi and spymemcached sit between web workers and the cache fleet,
// coalescing several in-flight multi-gets into one bundled plan. This proxy
// does the same over an RnbKvClient: callers enqueue multi-gets and either
// the window filling up or an explicit flush() executes ONE merged plan,
// after which each caller's future-like ticket holds exactly its own keys'
// results. Single-threaded by design (a proxy shard owns its socket set, as
// moxi worker threads do); determinism makes it simulable and testable.
//
// The trade-off it exposes is the paper's: merging reduces transactions per
// original request, but bundling unrelated requests can pick different
// replicas than the requests would pick alone, diluting the locality that
// overbooking feeds on (measured by ablation_merge_window).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "kv/rnb_kv_client.hpp"

namespace rnb::kv {

class BatchingProxy {
 public:
  /// A handle to one enqueued request's results, valid after the batch it
  /// belongs to has been executed.
  class Ticket {
   public:
    /// True once the owning batch executed (enough enqueues or flush()).
    bool ready() const noexcept { return state_ && state_->ready; }

    /// Results for this ticket's keys only. Requires ready().
    const std::unordered_map<std::string, std::string>& values() const;

    /// Keys of this request that no server returned. Requires ready().
    const std::vector<std::string>& missing() const;

   private:
    friend class BatchingProxy;
    struct State {
      bool ready = false;
      std::unordered_map<std::string, std::string> values;
      std::vector<std::string> missing;
    };
    std::shared_ptr<State> state_ = std::make_shared<State>();
  };

  /// Merge up to `window` requests per executed plan.
  BatchingProxy(RnbKvClient& client, std::uint32_t window);

  /// Enqueue a multi-get; executes the pending batch when it reaches the
  /// window. The returned ticket becomes ready at that execution (or at the
  /// next flush()).
  Ticket multi_get(std::span<const std::string> keys);

  /// Execute whatever is pending, regardless of window fill.
  void flush();

  std::uint32_t window() const noexcept { return window_; }
  std::size_t pending_requests() const noexcept { return pending_.size(); }

  /// Cumulative transactions issued and original requests served — the
  /// per-request transaction cost this proxy achieved.
  std::uint64_t transactions_issued() const noexcept { return transactions_; }
  std::uint64_t requests_served() const noexcept { return served_; }

 private:
  struct Pending {
    std::vector<std::string> keys;
    std::shared_ptr<Ticket::State> state;
  };

  RnbKvClient& client_;
  std::uint32_t window_;
  std::vector<Pending> pending_;
  std::uint64_t transactions_ = 0;
  std::uint64_t served_ = 0;
};

}  // namespace rnb::kv
