// Poll-source abstraction for the event-driven kv server core.
//
// The reactor (kv/reactor.hpp) never touches a socket directly: every
// readiness wait and every byte of I/O goes through a PollSource. Two
// implementations exist:
//
//   EpollPoller   level-triggered epoll(7) over real non-blocking sockets,
//                 plus an eventfd so another thread can interrupt a wait
//                 (orderly shutdown).
//   SimPoller     (kv/sim_poller.hpp) a deterministic replay of scripted
//                 readiness / partial-read / EAGAIN / short-write / reset
//                 schedules — no kernel in the path, so the connection
//                 state machines get exhaustive, reproducible unit
//                 coverage of exactly the interleavings that are
//                 timing-dependent over real sockets.
//
// The interface is deliberately level-triggered: wait() keeps reporting a
// handle ready until the condition is drained. That makes the state
// machines simpler to verify (no lost-edge bugs) at the cost of one
// syscall-ish call per spurious wakeup — the right trade for a testable
// core.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

namespace rnb::kv {

/// Outcome of one non-blocking read/write attempt on a handle.
enum class IoStatus {
  kOk,          // `bytes` transferred (possibly short)
  kWouldBlock,  // EAGAIN/EWOULDBLOCK: retry after the next readiness event
  kEof,         // orderly peer close (reads only)
  kError,       // connection reset or other fatal socket error
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;
};

/// One readiness report from wait().
struct PollEvent {
  int handle = -1;
  bool readable = false;
  bool writable = false;
  bool hangup = false;  // peer hung up / error condition (EPOLLHUP|EPOLLERR)
};

/// The seam between the reactor and the outside world: readiness waits,
/// handle registration, and the I/O calls themselves. Handles are opaque
/// ints (fds for EpollPoller, small ids for SimPoller). Not thread-safe
/// except where noted: exactly one loop thread drives a PollSource.
class PollSource {
 public:
  virtual ~PollSource() = default;

  /// Register a handle; `want_write` is usually off until a short write
  /// leaves the outbox non-empty.
  virtual void add(int handle, bool want_read, bool want_write) = 0;
  virtual void modify(int handle, bool want_read, bool want_write) = 0;
  virtual void remove(int handle) = 0;

  /// Block up to `timeout_ms` (-1 = forever, 0 = poll) for readiness;
  /// appends to `events` (cleared first) and returns the count. A return
  /// of 0 means timeout or interrupt().
  virtual std::size_t wait(std::vector<PollEvent>& events,
                           int timeout_ms) = 0;

  /// Non-blocking read into `buffer`. Short reads are normal.
  virtual IoResult read(int handle, char* buffer, std::size_t capacity) = 0;

  /// Non-blocking gather-write of `chunks` in order. Short writes are
  /// normal: `bytes` may stop anywhere, including mid-chunk.
  virtual IoResult writev(int handle,
                          std::span<const std::string_view> chunks) = 0;

  /// Accept one pending connection on a listening handle: the new handle,
  /// or -1 when none is pending (EAGAIN), or -2 on a fatal acceptor error.
  virtual int accept(int listen_handle) = 0;

  /// Close and forget a handle (also deregisters it).
  virtual void close(int handle) = 0;

  /// Wake a concurrent wait() early. The one call that may come from
  /// another thread (shutdown); a no-op for single-threaded sources.
  virtual void interrupt() {}
};

/// Level-triggered epoll over real non-blocking loopback sockets.
class EpollPoller final : public PollSource {
 public:
  EpollPoller();
  ~EpollPoller() override;

  EpollPoller(const EpollPoller&) = delete;
  EpollPoller& operator=(const EpollPoller&) = delete;

  void add(int handle, bool want_read, bool want_write) override;
  void modify(int handle, bool want_read, bool want_write) override;
  void remove(int handle) override;
  std::size_t wait(std::vector<PollEvent>& events, int timeout_ms) override;
  IoResult read(int handle, char* buffer, std::size_t capacity) override;
  IoResult writev(int handle,
                  std::span<const std::string_view> chunks) override;
  /// accept4(SOCK_NONBLOCK) + TCP_NODELAY on the accepted socket.
  int accept(int listen_handle) override;
  void close(int handle) override;
  void interrupt() override;

 private:
  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;  // eventfd registered for interrupt()
};

}  // namespace rnb::kv
