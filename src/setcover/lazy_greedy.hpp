// Lazy greedy set cover (Minoux's accelerated greedy).
//
// Marginal gains of a set-cover objective are submodular: a server's gain
// only shrinks as coverage grows. The lazy variant keeps stale gains in a
// max-heap and re-evaluates only the popped candidate; if the refreshed gain
// still tops the heap, it is the true argmax. With consistent (gain, lowest
// server id) ordering this produces *identical picks* to the plain greedy —
// the tests assert result equality — while skipping most gain evaluations on
// larger requests. The ablation bench measures the speedup.
#pragma once

#include "setcover/cover.hpp"

namespace rnb {

CoverResult lazy_greedy_cover(const CoverInstance& instance);

CoverResult lazy_greedy_cover_partial(const CoverInstance& instance,
                                      std::size_t target);

}  // namespace rnb
