// Exact minimum set cover by branch-and-bound, for solver-quality tests.
//
// Exponential in the worst case — usable only at the request sizes the
// paper simulates (tens of items, a handful of candidate servers each),
// which is exactly where we want ground truth: the ablation bench reports
// the greedy/optimal transaction-count ratio on real RnB instances, backing
// the paper's claim that "a linear time approximation achieves extremely
// good results in the context of RnB".
#pragma once

#include <cstddef>
#include <optional>

#include "setcover/cover.hpp"

namespace rnb {

/// Optimal full cover, or nullopt if `node_budget` branch-and-bound nodes
/// were exhausted first (guards against pathological instances in benches).
std::optional<CoverResult> exact_cover(const CoverInstance& instance,
                                       std::size_t node_budget = 1u << 22);

}  // namespace rnb
