#include "setcover/lazy_greedy.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "common/bitset.hpp"
#include "common/error.hpp"

namespace rnb {
namespace {

struct HeapEntry {
  std::size_t gain;
  ServerId server;
  std::size_t dense;
  // Max-heap by gain; among equal gains prefer the LOWEST server id, which
  // for std::priority_queue's "less" comparator means higher ids compare
  // smaller. This matches plain greedy's tie-break exactly.
  friend bool operator<(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.server > b.server;
  }
};

CoverResult run_lazy(const CoverInstance& instance, std::size_t target) {
  const std::size_t m = instance.num_items();
  RNB_REQUIRE(target <= m);
  CoverResult result;
  result.assignment.assign(m, kInvalidServer);
  if (m == 0 || target == 0) return result;

  std::vector<ServerId> dense_to_server;
  std::vector<DynamicBitset> holds;
  {
    std::unordered_map<ServerId, std::size_t> to_dense;
    for (std::size_t i = 0; i < m; ++i) {
      for (const ServerId s : instance.candidates[i]) {
        auto [it, inserted] = to_dense.try_emplace(s, dense_to_server.size());
        if (inserted) {
          dense_to_server.push_back(s);
          holds.emplace_back(m);
        }
        holds[it->second].set(i);
      }
    }
  }

  std::priority_queue<HeapEntry> heap;
  for (std::size_t d = 0; d < holds.size(); ++d)
    heap.push({holds[d].count(), dense_to_server[d], d});

  DynamicBitset covered(m);
  std::size_t covered_count = 0;

  while (covered_count < target) {
    RNB_REQUIRE(!heap.empty() && "cover target unreachable");
    HeapEntry top = heap.top();
    heap.pop();
    const std::size_t fresh = holds[top.dense].andnot_count(covered);
    if (fresh == 0) continue;
    if (!heap.empty()) {
      // If the refreshed gain no longer dominates the (stale) runner-up,
      // or ties it with a higher server id, reinsert and retry.
      const HeapEntry& next = heap.top();
      const bool still_best =
          fresh > next.gain || (fresh == next.gain && top.server < next.server);
      if (!still_best) {
        top.gain = fresh;
        heap.push(top);
        continue;
      }
    }
    result.servers_used.push_back(top.server);
    const std::size_t want = target - covered_count;
    std::size_t taken = 0;
    holds[top.dense].for_each_set([&](std::size_t i) {
      if (taken < want && !covered.test(i)) {
        covered.set(i);
        result.assignment[i] = top.server;
        ++taken;
      }
    });
    covered_count += taken;
  }
  return result;
}

}  // namespace

CoverResult lazy_greedy_cover(const CoverInstance& instance) {
  return run_lazy(instance, instance.num_items());
}

CoverResult lazy_greedy_cover_partial(const CoverInstance& instance,
                                      std::size_t target) {
  return run_lazy(instance, std::min(target, instance.num_items()));
}

}  // namespace rnb
