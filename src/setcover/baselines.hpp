// Baseline replica selectors the paper compares against.
//
// * distinguished_assignment — ignore replicas entirely; every item goes to
//   its first candidate. With replication 1 this *is* stock consistent
//   hashing (the multi-get-hole baseline of Fig. 3); with replication > 1 it
//   models replication used only for fault tolerance, never for bundling.
// * random_replica_assignment — each item independently picks a uniformly
//   random replica. This models Facebook's full-system replication (paper
//   Section II-C solution 3): k replicas spread load k ways but do nothing
//   to reduce transactions per request.
#pragma once

#include "common/rng.hpp"
#include "setcover/cover.hpp"

namespace rnb {

CoverResult distinguished_assignment(const CoverInstance& instance);

CoverResult random_replica_assignment(const CoverInstance& instance,
                                      Xoshiro256& rng);

}  // namespace rnb
