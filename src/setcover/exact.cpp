#include "setcover/exact.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/bitset.hpp"
#include "common/error.hpp"
#include "setcover/greedy.hpp"

namespace rnb {
namespace {

struct Searcher {
  const std::vector<DynamicBitset>& holds;
  const std::vector<ServerId>& ids;
  std::size_t m;
  std::size_t node_budget;
  std::size_t nodes = 0;

  std::vector<std::size_t> best;     // dense server indices of incumbent
  std::vector<std::size_t> current;  // picks along the current branch
  bool budget_exhausted = false;

  // Branch on the lowest-index uncovered item: one child per server that
  // holds it. This is complete (any cover must serve that item) and keeps
  // the branching factor at the item's replication level rather than the
  // server count.
  void search(const DynamicBitset& covered, std::size_t covered_count) {
    if (++nodes > node_budget) {
      budget_exhausted = true;
      return;
    }
    if (covered_count == m) {
      if (current.size() < best.size()) best = current;
      return;
    }
    // Bound: at least one more pick is needed, so a branch whose cover would
    // end up no smaller than the incumbent cannot improve on it.
    if (current.size() + 1 >= best.size()) return;
    std::size_t item = m;
    for (std::size_t i = 0; i < m; ++i)
      if (!covered.test(i)) {
        item = i;
        break;
      }
    RNB_ENSURE(item < m);
    for (std::size_t d = 0; d < holds.size(); ++d) {
      if (budget_exhausted) return;
      if (!holds[d].test(item)) continue;
      const std::size_t gain = holds[d].andnot_count(covered);
      if (gain == 0) continue;
      DynamicBitset next = covered;
      next.or_inplace(holds[d]);
      current.push_back(d);
      search(next, covered_count + gain);
      current.pop_back();
    }
  }
};

}  // namespace

std::optional<CoverResult> exact_cover(const CoverInstance& instance,
                                       std::size_t node_budget) {
  const std::size_t m = instance.num_items();
  CoverResult result;
  result.assignment.assign(m, kInvalidServer);
  if (m == 0) return result;

  std::vector<ServerId> ids;
  std::vector<DynamicBitset> holds;
  {
    std::unordered_map<ServerId, std::size_t> to_dense;
    for (std::size_t i = 0; i < m; ++i) {
      RNB_REQUIRE(!instance.candidates[i].empty());
      for (const ServerId s : instance.candidates[i]) {
        auto [it, inserted] = to_dense.try_emplace(s, ids.size());
        if (inserted) {
          ids.push_back(s);
          holds.emplace_back(m);
        }
        holds[it->second].set(i);
      }
    }
  }

  // Seed the incumbent with greedy so the bound is tight from node one.
  const CoverResult greedy = greedy_cover(instance);
  Searcher searcher{holds, ids, m, node_budget, 0, {}, {}, false};
  {
    std::unordered_map<ServerId, std::size_t> to_dense;
    for (std::size_t d = 0; d < ids.size(); ++d) to_dense[ids[d]] = d;
    for (const ServerId s : greedy.servers_used)
      searcher.best.push_back(to_dense.at(s));
  }

  DynamicBitset covered(m);
  searcher.search(covered, 0);
  if (searcher.budget_exhausted) return std::nullopt;

  // Materialize the incumbent: assign each item to the first picked server
  // holding it (mirrors greedy's assignment rule).
  DynamicBitset assigned(m);
  for (const std::size_t d : searcher.best) {
    const ServerId server = ids[d];
    bool used = false;
    holds[d].for_each_set([&](std::size_t i) {
      if (!assigned.test(i)) {
        assigned.set(i);
        result.assignment[i] = server;
        used = true;
      }
    });
    if (used) result.servers_used.push_back(server);
  }
  RNB_ENSURE(assigned.count() == m);
  return result;
}

}  // namespace rnb
