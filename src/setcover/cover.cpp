#include "setcover/cover.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rnb {

std::size_t CoverInstance::target_from_fraction(std::size_t num_items,
                                                double fraction) {
  RNB_REQUIRE(fraction >= 0.0 && fraction <= 1.0);
  return static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(num_items)));
}

std::size_t CoverResult::covered_items() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(assignment.begin(), assignment.end(),
                    [](ServerId s) { return s != kInvalidServer; }));
}

bool CoverResult::valid_for(const CoverInstance& instance,
                            std::size_t target) const {
  if (assignment.size() != instance.num_items()) return false;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const ServerId s = assignment[i];
    if (s == kInvalidServer) continue;
    const auto& cand = instance.candidates[i];
    if (std::find(cand.begin(), cand.end(), s) == cand.end()) return false;
    if (std::find(servers_used.begin(), servers_used.end(), s) ==
        servers_used.end())
      return false;
  }
  return covered_items() >= target;
}

std::vector<std::size_t> transaction_sizes(const CoverResult& result,
                                           ServerId num_servers) {
  std::vector<std::size_t> per_server(num_servers, 0);
  for (const ServerId s : result.assignment)
    if (s != kInvalidServer) {
      RNB_REQUIRE(s < num_servers);
      ++per_server[s];
    }
  std::vector<std::size_t> sizes;
  sizes.reserve(result.servers_used.size());
  for (const ServerId s : result.servers_used)
    if (per_server[s] > 0) sizes.push_back(per_server[s]);
  return sizes;
}

}  // namespace rnb
