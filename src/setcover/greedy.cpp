#include "setcover/greedy.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/bitset.hpp"
#include "common/error.hpp"

namespace rnb {
namespace {

/// Dense relabeling of the servers that actually appear in an instance, with
/// one bitset of item positions per server. Requests touch a handful of
/// servers out of a potentially large cluster; densifying keeps the greedy
/// loop O(servers_in_request) rather than O(cluster size).
struct DenseInstance {
  std::vector<ServerId> dense_to_server;
  std::vector<DynamicBitset> holds;  // per dense server: items it can serve

  explicit DenseInstance(const CoverInstance& instance) {
    std::unordered_map<ServerId, std::size_t> to_dense;
    const std::size_t m = instance.num_items();
    for (std::size_t i = 0; i < m; ++i) {
      for (const ServerId s : instance.candidates[i]) {
        auto [it, inserted] = to_dense.try_emplace(s, dense_to_server.size());
        if (inserted) {
          dense_to_server.push_back(s);
          holds.emplace_back(m);
        }
        holds[it->second].set(i);
      }
    }
    // Deterministic iteration order: sort dense ids by server id and remap.
    // (unordered_map order must never leak into results.)
    std::vector<std::size_t> order(dense_to_server.size());
    for (std::size_t d = 0; d < order.size(); ++d) order[d] = d;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return dense_to_server[a] < dense_to_server[b];
    });
    std::vector<ServerId> sorted_ids(order.size());
    std::vector<DynamicBitset> sorted_holds(order.size());
    for (std::size_t d = 0; d < order.size(); ++d) {
      sorted_ids[d] = dense_to_server[order[d]];
      sorted_holds[d] = std::move(holds[order[d]]);
    }
    dense_to_server = std::move(sorted_ids);
    holds = std::move(sorted_holds);
  }
};

CoverResult run_greedy(const CoverInstance& instance, std::size_t target) {
  const std::size_t m = instance.num_items();
  RNB_REQUIRE(target <= m);
  CoverResult result;
  result.assignment.assign(m, kInvalidServer);
  if (m == 0 || target == 0) return result;

  const DenseInstance dense(instance);
  DynamicBitset covered(m);
  std::vector<bool> picked(dense.holds.size(), false);
  std::size_t covered_count = 0;

  while (covered_count < target) {
    // Pick the unpicked server with maximal marginal gain; dense ids are in
    // ascending server-id order, so `>` keeps the lowest id among ties.
    std::size_t best = dense.holds.size();
    std::size_t best_gain = 0;
    for (std::size_t d = 0; d < dense.holds.size(); ++d) {
      if (picked[d]) continue;
      const std::size_t gain = dense.holds[d].andnot_count(covered);
      if (gain > best_gain) {
        best_gain = gain;
        best = d;
      }
    }
    // No server adds coverage: with a full target this means an item has no
    // candidates; with a partial target it cannot happen before reaching it.
    RNB_REQUIRE(best_gain > 0 && "cover target unreachable");
    picked[best] = true;
    const ServerId server = dense.dense_to_server[best];
    result.servers_used.push_back(server);
    // For a partial cover, never assign more items than the target needs:
    // the last server may hold more new items than the remaining gap, and
    // fetching them would be paying for items the LIMIT clause let us skip.
    const std::size_t want = target - covered_count;
    std::size_t taken = 0;
    dense.holds[best].for_each_set([&](std::size_t i) {
      if (taken < want && !covered.test(i)) {
        covered.set(i);
        result.assignment[i] = server;
        ++taken;
      }
    });
    covered_count += taken;
  }
  return result;
}

}  // namespace

CoverResult greedy_cover(const CoverInstance& instance) {
  return run_greedy(instance, instance.num_items());
}

CoverResult greedy_cover_partial(const CoverInstance& instance,
                                 std::size_t target) {
  return run_greedy(instance, std::min(target, instance.num_items()));
}

CoverResult greedy_cover_budget(const CoverInstance& instance,
                                std::size_t max_transactions) {
  const std::size_t m = instance.num_items();
  CoverResult result;
  result.assignment.assign(m, kInvalidServer);
  if (m == 0 || max_transactions == 0) return result;

  const DenseInstance dense(instance);
  DynamicBitset covered(m);
  std::vector<bool> picked(dense.holds.size(), false);

  for (std::size_t txn = 0; txn < max_transactions; ++txn) {
    std::size_t best = dense.holds.size();
    std::size_t best_gain = 0;
    for (std::size_t d = 0; d < dense.holds.size(); ++d) {
      if (picked[d]) continue;
      const std::size_t gain = dense.holds[d].andnot_count(covered);
      if (gain > best_gain) {
        best_gain = gain;
        best = d;
      }
    }
    if (best_gain == 0) break;  // nothing left to gain: stop under budget
    picked[best] = true;
    const ServerId server = dense.dense_to_server[best];
    result.servers_used.push_back(server);
    dense.holds[best].for_each_set([&](std::size_t i) {
      if (!covered.test(i)) {
        covered.set(i);
        result.assignment[i] = server;
      }
    });
  }
  return result;
}

}  // namespace rnb
