#include "setcover/baselines.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rnb {
namespace {

CoverResult assignment_from_choice(
    const CoverInstance& instance,
    const std::vector<ServerId>& chosen) {
  CoverResult result;
  result.assignment = chosen;
  // servers_used: distinct servers in first-use order.
  for (const ServerId s : chosen) {
    if (std::find(result.servers_used.begin(), result.servers_used.end(), s) ==
        result.servers_used.end())
      result.servers_used.push_back(s);
  }
  RNB_ENSURE(result.assignment.size() == instance.num_items());
  return result;
}

}  // namespace

CoverResult distinguished_assignment(const CoverInstance& instance) {
  std::vector<ServerId> chosen;
  chosen.reserve(instance.num_items());
  for (const auto& cand : instance.candidates) {
    RNB_REQUIRE(!cand.empty());
    chosen.push_back(cand.front());
  }
  return assignment_from_choice(instance, chosen);
}

CoverResult random_replica_assignment(const CoverInstance& instance,
                                      Xoshiro256& rng) {
  std::vector<ServerId> chosen;
  chosen.reserve(instance.num_items());
  for (const auto& cand : instance.candidates) {
    RNB_REQUIRE(!cand.empty());
    chosen.push_back(cand[rng.below(cand.size())]);
  }
  return assignment_from_choice(instance, chosen);
}

}  // namespace rnb
