// Minimum set cover instances and results — the "Bundle" half of RnB.
//
// Per request, the client knows each requested item's replica servers; it
// must choose one replica per item so that the set of *distinct* servers
// touched (== transactions) is minimal. That is minimum set cover, which is
// NP-complete (Karp '72), so production code uses the greedy approximation
// (ln(M)+1-competitive, and near-optimal on the random instances RnB
// generates — the ablation bench measures the actual gap against the exact
// branch-and-bound solver).
//
// LIMIT-style requests (paper Section III-F) relax the instance: only
// ceil(fraction * M) items must be covered, and the solver may *choose*
// which items to skip — that freedom is where the extra gain comes from.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace rnb {

/// One cover instance: for each requested item (by position), the candidate
/// servers that hold a replica of it, in replica order (candidates[i][0] is
/// the distinguished copy).
struct CoverInstance {
  std::vector<std::vector<ServerId>> candidates;

  std::size_t num_items() const noexcept { return candidates.size(); }

  /// Items that must be covered for the instance to be satisfied; computed
  /// from a LIMIT fraction in [0,1]. fraction 1.0 -> all items.
  static std::size_t target_from_fraction(std::size_t num_items,
                                          double fraction);
};

/// A solution: which server serves each item (kInvalidServer when the item
/// was deliberately skipped by a partial cover), plus the distinct servers
/// used in pick order.
struct CoverResult {
  std::vector<ServerId> assignment;
  std::vector<ServerId> servers_used;

  std::size_t transactions() const noexcept { return servers_used.size(); }
  std::size_t covered_items() const noexcept;

  /// True iff every assigned server actually holds a replica of its item and
  /// the covered count meets `target`. Used by the property tests.
  bool valid_for(const CoverInstance& instance, std::size_t target) const;
};

/// Items-per-transaction counts implied by a result (for the calibration
/// model's transaction-size histogram).
std::vector<std::size_t> transaction_sizes(const CoverResult& result,
                                           ServerId num_servers);

}  // namespace rnb
