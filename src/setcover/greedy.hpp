// Greedy set cover over bitsets — the paper's production bundling heuristic.
//
// Repeatedly pick the server whose replicas cover the most still-uncovered
// items; ties break toward the lowest server id. Deterministic tie-breaking
// is load-bearing: it is what makes "two requests with similar item sets use
// the same replicas for the shared items" (paper Fig. 7), which in turn is
// what lets overbooked cold replicas go LRU-cold and be evicted. Randomizing
// the tie-break would destroy the overbooking gains of Fig. 8.
#pragma once

#include <cstddef>

#include "setcover/cover.hpp"

namespace rnb {

/// Full greedy cover: covers every item (requires each item to have at least
/// one candidate server).
CoverResult greedy_cover(const CoverInstance& instance);

/// Partial greedy cover: stop picking servers once at least `target` items
/// are covered. Uncovered items get kInvalidServer in the assignment.
CoverResult greedy_cover_partial(const CoverInstance& instance,
                                 std::size_t target);

/// Budgeted cover (maximum coverage): pick at most `max_transactions`
/// servers, maximizing the number of covered items. This is the dual LIMIT
/// form from the paper's Section III-F ("fetch as many items as possible
/// within X milliseconds" — a transaction budget is the simulator-level
/// stand-in for a deadline). Greedy is the classic (1 - 1/e) approximation
/// for maximum coverage. Items left uncovered get kInvalidServer.
CoverResult greedy_cover_budget(const CoverInstance& instance,
                                std::size_t max_transactions);

}  // namespace rnb
