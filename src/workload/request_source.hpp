// Request stream abstraction.
//
// A request is a set of item ids a user needs at once — the paper's
// "request set". Sources are infinite and deterministic given their seed;
// the simulators pull `warmup + measure` requests from one.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace rnb {

class RequestSource {
 public:
  virtual ~RequestSource() = default;

  /// Fill `out` with the next request's items (cleared first). Items within
  /// one request are distinct. Never returns an empty request.
  virtual void next(std::vector<ItemId>& out) = 0;

  /// Number of distinct items the source can ever emit; the cluster is
  /// sized to store exactly these.
  virtual std::uint64_t universe_size() const noexcept = 0;
};

}  // namespace rnb
