// Zipf-popularity request generation (extension beyond the paper).
//
// Real memcached key popularity is heavy-tailed; the paper sidesteps this by
// deriving popularity from graph structure. This source exposes skew as a
// direct knob instead: each request is `request_size` distinct items whose
// popularity ranks follow Zipf(s). With s=0 it degenerates to
// UniformWorkload; larger s concentrates requests on hot items, which the
// overbooking ablation uses to show cold replicas being shed.
#pragma once

#include <unordered_set>

#include "common/rng.hpp"
#include "workload/request_source.hpp"

namespace rnb {

class ZipfWorkload final : public RequestSource {
 public:
  ZipfWorkload(std::uint64_t universe, std::uint32_t request_size, double skew,
               std::uint64_t seed);

  void next(std::vector<ItemId>& out) override;

  std::uint64_t universe_size() const noexcept override { return universe_; }

 private:
  std::uint64_t universe_;
  std::uint32_t request_size_;
  ZipfSampler sampler_;
  Xoshiro256 rng_;
  /// Popularity rank -> item id, a fixed pseudo-random permutation so hot
  /// items are scattered over the id (and thus server) space.
  std::vector<ItemId> rank_to_item_;
  std::unordered_set<ItemId> scratch_;
};

}  // namespace rnb
