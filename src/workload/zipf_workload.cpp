#include "workload/zipf_workload.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace rnb {

ZipfWorkload::ZipfWorkload(std::uint64_t universe, std::uint32_t request_size,
                           double skew, std::uint64_t seed)
    : universe_(universe),
      request_size_(request_size),
      sampler_(universe, skew),
      rng_(seed) {
  RNB_REQUIRE(request_size >= 1);
  RNB_REQUIRE(request_size <= universe);
  rank_to_item_.resize(universe);
  std::iota(rank_to_item_.begin(), rank_to_item_.end(), ItemId{0});
  Xoshiro256 shuffle_rng(seed ^ 0xabcdef12345ULL);
  for (std::size_t i = universe; i > 1; --i)
    std::swap(rank_to_item_[i - 1], rank_to_item_[shuffle_rng.below(i)]);
}

void ZipfWorkload::next(std::vector<ItemId>& out) {
  out.clear();
  scratch_.clear();
  while (out.size() < request_size_) {
    const ItemId item = rank_to_item_[sampler_(rng_)];
    if (scratch_.insert(item).second) out.push_back(item);
  }
}

}  // namespace rnb
