#include "workload/social_workload.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rnb {

SocialWorkload::SocialWorkload(const DirectedGraph& graph, std::uint64_t seed,
                               double activity_skew)
    : graph_(graph), rng_(seed) {
  RNB_REQUIRE(activity_skew >= 0.0);
  std::uint64_t total_degree = 0;
  for (NodeId n = 0; n < graph.num_nodes(); ++n) {
    const std::uint32_t d = graph.out_degree(n);
    if (d > 0) {
      active_nodes_.push_back(n);
      total_degree += d;
    }
  }
  RNB_REQUIRE(!active_nodes_.empty());
  mean_request_size_ = static_cast<double>(total_degree) /
                       static_cast<double>(active_nodes_.size());
  if (activity_skew > 0.0) {
    // Popularity rank must be independent of node id (ids correlate with
    // degree in some generators): Fisher-Yates with a dedicated stream.
    Xoshiro256 shuffle_rng(seed ^ 0x5ca1ab1e5e1ec7edULL);
    for (std::size_t i = active_nodes_.size(); i > 1; --i)
      std::swap(active_nodes_[i - 1], active_nodes_[shuffle_rng.below(i)]);
    activity_.emplace(active_nodes_.size(), activity_skew);
  }
}

void SocialWorkload::next(std::vector<ItemId>& out) {
  out.clear();
  const NodeId user =
      activity_ ? active_nodes_[(*activity_)(rng_)]
                : active_nodes_[rng_.below(active_nodes_.size())];
  for (const NodeId friend_node : graph_.neighbors(user))
    out.push_back(static_cast<ItemId>(friend_node));
}

}  // namespace rnb
