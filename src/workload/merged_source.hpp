// Request merging — paper Section III-E.
//
// Moxi/spymemcached-style proxies collect several end-user requests and
// issue them as one combined multi-get. MergedSource models that: it pulls
// `window` requests from an inner source and concatenates them (the client
// deduplicates). The paper's caveat — merging unrelated requests dilutes
// the intra-request affinity that overbooking feeds on — is exactly what
// Figs. 9-10 measure.
#pragma once

#include <memory>

#include "workload/request_source.hpp"

namespace rnb {

class MergedSource final : public RequestSource {
 public:
  MergedSource(std::unique_ptr<RequestSource> inner, std::uint32_t window);

  void next(std::vector<ItemId>& out) override;

  std::uint64_t universe_size() const noexcept override {
    return inner_->universe_size();
  }

  std::uint32_t window() const noexcept { return window_; }

 private:
  std::unique_ptr<RequestSource> inner_;
  std::uint32_t window_;
  std::vector<ItemId> scratch_;
};

}  // namespace rnb
