#include "workload/request_source.hpp"

// Interface-only translation unit; keeps the vtable anchored in one place.
