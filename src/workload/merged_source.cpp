#include "workload/merged_source.hpp"

#include "common/error.hpp"

namespace rnb {

MergedSource::MergedSource(std::unique_ptr<RequestSource> inner,
                           std::uint32_t window)
    : inner_(std::move(inner)), window_(window) {
  RNB_REQUIRE(inner_ != nullptr);
  RNB_REQUIRE(window >= 1);
}

void MergedSource::next(std::vector<ItemId>& out) {
  out.clear();
  for (std::uint32_t k = 0; k < window_; ++k) {
    inner_->next(scratch_);
    out.insert(out.end(), scratch_.begin(), scratch_.end());
  }
}

}  // namespace rnb
