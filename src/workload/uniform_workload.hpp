// Uniform-random request generation — the simplified simulator's model.
//
// Paper Section III-F: "the set of items in each request is random and
// independent of the previous request". Each request is `request_size`
// distinct items drawn uniformly from the universe; this is also the model
// behind the closed-form multi-get-hole analysis of Section II-A.
#pragma once

#include <unordered_set>

#include "common/rng.hpp"
#include "workload/request_source.hpp"

namespace rnb {

class UniformWorkload final : public RequestSource {
 public:
  UniformWorkload(std::uint64_t universe, std::uint32_t request_size,
                  std::uint64_t seed);

  void next(std::vector<ItemId>& out) override;

  std::uint64_t universe_size() const noexcept override { return universe_; }
  std::uint32_t request_size() const noexcept { return request_size_; }

 private:
  std::uint64_t universe_;
  std::uint32_t request_size_;
  Xoshiro256 rng_;
  std::unordered_set<ItemId> scratch_;
};

}  // namespace rnb
