#include "workload/trace.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/error.hpp"

namespace rnb {

void write_trace(RequestSource& source, std::uint64_t count,
                 std::ostream& out) {
  out << "# rnb request trace v1\n"
      << "# requests: " << count
      << "  universe: " << source.universe_size() << "\n";
  std::vector<ItemId> request;
  for (std::uint64_t i = 0; i < count; ++i) {
    source.next(request);
    for (std::size_t j = 0; j < request.size(); ++j) {
      if (j) out << ' ';
      out << request[j];
    }
    out << '\n';
  }
}

void write_trace_file(RequestSource& source, std::uint64_t count,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("trace: cannot write " + path);
  write_trace(source, count, out);
}

TraceReplaySource::TraceReplaySource(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv(line);
    while (!sv.empty() && (sv.back() == '\r' || sv.back() == ' '))
      sv.remove_suffix(1);
    while (!sv.empty() && sv.front() == ' ') sv.remove_prefix(1);
    if (sv.empty() || sv.front() == '#') continue;
    std::vector<ItemId> request;
    while (!sv.empty()) {
      const std::size_t sp = sv.find(' ');
      const std::string_view token = sv.substr(0, sp);
      ItemId item = 0;
      const auto [ptr, ec] =
          std::from_chars(token.data(), token.data() + token.size(), item);
      if (ec != std::errc{} || ptr != token.data() + token.size()) {
        std::ostringstream msg;
        msg << "trace: bad item id '" << token << "' on line " << line_no;
        throw std::runtime_error(msg.str());
      }
      request.push_back(item);
      universe_ = std::max(universe_, item + 1);
      if (sp == std::string_view::npos) break;
      sv.remove_prefix(sp + 1);
      while (!sv.empty() && sv.front() == ' ') sv.remove_prefix(1);
    }
    if (!request.empty()) requests_.push_back(std::move(request));
  }
  if (requests_.empty())
    throw std::runtime_error("trace: no requests found");
}

TraceReplaySource TraceReplaySource::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("trace: cannot open " + path);
  return TraceReplaySource(in);
}

void TraceReplaySource::next(std::vector<ItemId>& out) {
  out = requests_[cursor_];
  if (++cursor_ == requests_.size()) {
    cursor_ = 0;
    ++cycles_;
  }
}

}  // namespace rnb
