// Request-trace recording and replay.
//
// The paper notes "we were unable to obtain real-life traces of accesses to
// memcached in big deployments" — so the simulators generate synthetic
// streams. This module closes the loop for users who DO have traces: a
// plain-text format (one request per line, space-separated item ids,
// '#' comments), a writer that snapshots any RequestSource, and a reader
// that replays a trace file as a RequestSource. Replaying the same file is
// bit-identical, which also makes traces the exchange format for
// cross-implementation comparisons.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/request_source.hpp"

namespace rnb {

/// Stream `count` requests from `source` into `out` in trace format.
void write_trace(RequestSource& source, std::uint64_t count,
                 std::ostream& out);

/// Convenience file variant; throws std::runtime_error if unwritable.
void write_trace_file(RequestSource& source, std::uint64_t count,
                      const std::string& path);

/// Replays a recorded trace. The whole trace is held in memory (traces at
/// the paper's scale are a few MB); next() cycles from the top when the
/// trace is exhausted, satisfying the infinite-source contract.
class TraceReplaySource final : public RequestSource {
 public:
  /// Parse a trace from a stream. Throws std::runtime_error on malformed
  /// lines or if the trace contains no non-empty request.
  explicit TraceReplaySource(std::istream& in);

  /// Parse a trace file. Throws std::runtime_error if unreadable.
  static TraceReplaySource from_file(const std::string& path);

  void next(std::vector<ItemId>& out) override;

  std::uint64_t universe_size() const noexcept override { return universe_; }

  std::size_t trace_length() const noexcept { return requests_.size(); }

  /// Number of full cycles completed so far (0 while on the first pass).
  std::uint64_t cycles() const noexcept { return cycles_; }

 private:
  std::vector<std::vector<ItemId>> requests_;
  std::uint64_t universe_ = 0;  // max item id + 1
  std::size_t cursor_ = 0;
  std::uint64_t cycles_ = 0;
};

}  // namespace rnb
