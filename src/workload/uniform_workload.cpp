#include "workload/uniform_workload.hpp"

#include "common/error.hpp"

namespace rnb {

UniformWorkload::UniformWorkload(std::uint64_t universe,
                                 std::uint32_t request_size,
                                 std::uint64_t seed)
    : universe_(universe), request_size_(request_size), rng_(seed) {
  RNB_REQUIRE(universe > 0);
  RNB_REQUIRE(request_size >= 1);
  RNB_REQUIRE(request_size <= universe);
}

void UniformWorkload::next(std::vector<ItemId>& out) {
  out.clear();
  scratch_.clear();
  while (out.size() < request_size_) {
    const ItemId item = rng_.below(universe_);
    if (scratch_.insert(item).second) out.push_back(item);
  }
}

}  // namespace rnb
