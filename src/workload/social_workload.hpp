// Social-network request generation — paper Section III-B.
//
// "First, we randomly and uniformly picked a user out of all of the users in
// the graph. Next, we looked at the user's friends... we needed to fetch the
// items representing all of the user's friends." Each graph node is one
// item (the user's "status"); a request is the out-neighbor list of a
// uniformly random user with at least one friend.
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "workload/request_source.hpp"

namespace rnb {

class SocialWorkload final : public RequestSource {
 public:
  /// The graph must outlive the workload and contain at least one node with
  /// out-degree > 0.
  ///
  /// `activity_skew` > 0 draws the requesting user from a Zipf(skew)
  /// distribution over a random permutation of the active users instead of
  /// uniformly — real feed traffic is dominated by a minority of heavy
  /// users, which sharpens the request locality that overbooking exploits.
  /// 0 (the default) reproduces the paper's uniform user choice.
  SocialWorkload(const DirectedGraph& graph, std::uint64_t seed,
                 double activity_skew = 0.0);

  void next(std::vector<ItemId>& out) override;

  std::uint64_t universe_size() const noexcept override {
    return graph_.num_nodes();
  }

  /// Mean request size == mean out-degree over degree>0 nodes.
  double mean_request_size() const noexcept { return mean_request_size_; }

 private:
  const DirectedGraph& graph_;
  Xoshiro256 rng_;
  /// Nodes with out-degree > 0, so next() never has to reject-sample.
  /// Shuffled when activity_skew > 0 so popularity rank is independent of
  /// node id; the Zipf sampler indexes into this vector by rank.
  std::vector<NodeId> active_nodes_;
  std::optional<ZipfSampler> activity_;
  double mean_request_size_ = 0.0;
};

}  // namespace rnb
