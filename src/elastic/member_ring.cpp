#include "elastic/member_ring.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/hash.hpp"

namespace rnb::elastic {

std::string_view to_string(RingScheme scheme) noexcept {
  switch (scheme) {
    case RingScheme::kRch:
      return "rch";
    case RingScheme::kMultiProbe:
      return "multiprobe";
  }
  return "unknown";
}

MemberRing::MemberRing(const MemberRingConfig& config,
                       std::vector<ServerId> members)
    : config_(config), members_(std::move(members)) {
  RNB_REQUIRE(!members_.empty());
  RNB_REQUIRE(config_.replication >= 1);
  RNB_REQUIRE(config_.vnodes >= 1 && config_.probes >= 1);
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()),
                 members_.end());
  rebuild_points();
}

bool MemberRing::contains(ServerId server) const noexcept {
  return std::binary_search(members_.begin(), members_.end(), server);
}

std::uint32_t MemberRing::replication() const noexcept {
  return static_cast<std::uint32_t>(
      std::min<std::size_t>(config_.replication, members_.size()));
}

void MemberRing::rebuild_points() {
  ring_.clear();
  if (config_.scheme == RingScheme::kRch) {
    // Same point formula as ConsistentHashRing::insert_points, so member
    // set {0..N-1} is point-for-point the static RCH ring (pinned by
    // MemberRingTest.RchMatchesStaticPlacement).
    ring_.reserve(members_.size() * config_.vnodes);
    for (const ServerId s : members_)
      for (std::uint32_t v = 0; v < config_.vnodes; ++v)
        ring_.push_back(Point{
            fmix64(hash_combine(hash_combine(config_.seed, s + 1), v + 1)),
            s});
  } else {
    // Multi-probe: exactly one point per member. The lookup does the load
    // balancing, so the ring carries no vnode multiplier.
    ring_.reserve(members_.size());
    for (const ServerId s : members_)
      ring_.push_back(Point{fmix64(hash_combine(config_.seed, s + 1)), s});
  }
  std::sort(ring_.begin(), ring_.end());
}

void MemberRing::replicas(ItemId item, std::span<ServerId> out) const {
  RNB_REQUIRE(out.size() == replication());
  if (config_.scheme == RingScheme::kRch)
    replicas_rch(item, out);
  else
    replicas_multi_probe(item, out);
}

void MemberRing::replicas_rch(ItemId item, std::span<ServerId> out) const {
  const std::uint64_t h = fmix64(item ^ config_.seed);
  const auto start = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const Point& p, std::uint64_t key) { return p.hash < key; });
  std::size_t point = start == ring_.end()
                          ? 0
                          : static_cast<std::size_t>(start - ring_.begin());
  std::uint32_t found = 0;
  // Clockwise walk keeping first-seen members — the RCH rule. Terminates:
  // every member owns points, so ring_.size() steps suffice.
  for (std::size_t step = 0; step < ring_.size() && found < out.size();
       ++step, ++point) {
    const ServerId s = ring_[point % ring_.size()].server;
    const auto seen_end = out.begin() + found;
    if (std::find(out.begin(), seen_end, s) == seen_end) out[found++] = s;
  }
  RNB_ENSURE(found == out.size());
}

void MemberRing::replicas_multi_probe(ItemId item,
                                      std::span<ServerId> out) const {
  // Score each member by its closest clockwise distance from any of the k
  // probes to the member's single point; ranks are members ordered by
  // ascending score. A new member perturbs the order only where its point
  // beats every incumbent for some probe, which is what bounds movement
  // per join to ~1/(N+1) per rank. O(members * probes) per lookup — fine
  // for fleet-sized member counts; items-sized loops never call this.
  const HashFamily probes(config_.seed);
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> score(ring_.size(), kMax);
  for (std::uint32_t i = 0; i < config_.probes; ++i) {
    const std::uint64_t h = probes(i, item);
    for (std::size_t p = 0; p < ring_.size(); ++p) {
      const std::uint64_t dist = ring_[p].hash - h;  // u64 wrap = clockwise
      score[p] = std::min(score[p], dist);
    }
  }
  std::vector<std::size_t> order(ring_.size());
  for (std::size_t p = 0; p < ring_.size(); ++p) order[p] = p;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return score[a] < score[b] ||
           (score[a] == score[b] && ring_[a].server < ring_[b].server);
  });
  for (std::size_t r = 0; r < out.size(); ++r)
    out[r] = ring_[order[r]].server;
}

MemberRing MemberRing::with_member(ServerId server) const {
  std::vector<ServerId> next = members_;
  next.push_back(server);
  return MemberRing(config_, std::move(next));
}

MemberRing MemberRing::without_member(ServerId server) const {
  std::vector<ServerId> next;
  next.reserve(members_.size());
  for (const ServerId s : members_)
    if (s != server) next.push_back(s);
  RNB_REQUIRE(next.size() == members_.size() - 1);
  return MemberRing(config_, std::move(next));
}

}  // namespace rnb::elastic
