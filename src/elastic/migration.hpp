// MigrationDriver: stream affected replicas between servers across a ring
// epoch change, over the ordinary kv wire protocol.
//
// The driver pages through every member of the outgoing epoch with the
// `scan` verb (bounded batches of `batch_keys` entries) and re-places each
// entry under the incoming epoch's ring:
//
//   * Distinguished copies first. A pinned entry whose new rank-0 server
//     differs from its current home is `set ... pin`-ed onto the new
//     distinguished server before anything else happens to it, so at every
//     instant some server holds the pinned copy — the zero-key-loss
//     invariant (replica-class copies are evictable cache; only the pinned
//     copy is durable).
//   * Replica classes second, within the receiving server's ordinary byte
//     budget: copies are plain unpinned `set`s, so the receiver's LRU
//     admits them by evicting its own cold tail, exactly like client
//     write-backs. An out-of-memory refusal is a valid outcome, not an
//     error.
//   * Copy-then-delete: a copy the new ring disowns is deleted from its
//     old home only after the new home stored it — and deletes are
//     deferred until the source's scan is exhausted, because shrinking the
//     table mid-scan would slide entries across the skip-count cursor.
//
// Every transfer is an idempotent re-set, so the driver is resumable: on a
// persistent exchange failure it records a checkpoint (source index + scan
// cursor) and returns false; calling migrate() again with the same epochs
// re-scans from the checkpoint, re-sending at most one page's worth of
// already-applied work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "elastic/epoch.hpp"
#include "kv/failure_policy.hpp"

namespace rnb::elastic {

struct MigrationConfig {
  /// Entries per scan page — the batch bound; one page's transfers are
  /// in flight per roundtrip sequence, never the whole keyspace.
  std::uint32_t batch_keys = 64;
  /// Delete copies the incoming ring no longer assigns to their old home
  /// (off = additive copy only, e.g. for a dry run).
  bool delete_source = true;
  /// Retry / backoff policy for migration traffic (virtual time).
  kv::KvFailurePolicy failure;
};

struct MigrationStats {
  std::uint64_t pages = 0;
  std::uint64_t entries_scanned = 0;
  std::uint64_t pinned_moved = 0;     // distinguished copies re-homed
  std::uint64_t replicas_copied = 0;  // replica-class copies placed
  std::uint64_t demotions = 0;        // pinned -> evictable on old home
  std::uint64_t source_deletes = 0;   // copies removed from old homes
  std::uint64_t failed_transfers = 0; // exchanges that exhausted retries
  double elapsed = 0.0;               // virtual seconds across exchanges
};

/// Where a failed migration stopped: the next migrate() call with the same
/// epoch pair resumes here.
struct MigrationCheckpoint {
  std::size_t member_index = 0;  // index into the outgoing epoch's members
  std::uint64_t cursor = 0;      // scan cursor within that member

  friend bool operator==(const MigrationCheckpoint&,
                         const MigrationCheckpoint&) = default;
};

class MigrationDriver {
 public:
  MigrationDriver(kv::KvTransport& transport, const MigrationConfig& config);

  /// Stream every affected copy from `from`'s placement to `to`'s.
  /// Returns true when all sources are drained; false on a persistent
  /// transfer failure (checkpoint() records where — call again to resume).
  /// Migration frames carry no epoch tag, so they pass the servers' epoch
  /// gate in either configuration.
  bool migrate(const RingEpoch& from, const RingEpoch& to);

  const MigrationStats& stats() const noexcept { return stats_; }
  const MigrationCheckpoint& checkpoint() const noexcept {
    return checkpoint_;
  }
  const kv::KvFailureStats& failure_stats() const noexcept {
    return exchange_.stats();
  }

 private:
  bool transfer_pinned(ServerId source, const kv::Value& entry,
                       const RingEpoch& to);
  bool transfer_replica(ServerId source, const kv::Value& entry,
                        const RingEpoch& from, const RingEpoch& to);
  bool store(ServerId server, const std::string& key, const std::string& data,
             bool pin);
  bool erase(ServerId server, const std::string& key);

  kv::KvTransport& transport_;
  MigrationConfig config_;
  kv::KvExchange exchange_;
  MigrationStats stats_;
  MigrationCheckpoint checkpoint_;
  /// Deletes queued while scanning the current source (flushed after its
  /// scan exhausts; survives a resume, duplicates are harmless NOT_FOUNDs).
  std::vector<std::string> pending_deletes_;
  // Reused I/O buffers, one driver per controller thread.
  std::string request_;
  std::string response_;
};

}  // namespace rnb::elastic
