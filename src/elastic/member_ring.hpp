// Elastic replica placement over an explicit member set.
//
// The static placement policies (hashring/placement.hpp) map items onto the
// fixed id range [0, num_servers); the elastic membership subsystem instead
// places onto an explicit, mutable set of physical server ids, so a fleet
// can add and remove members without renumbering anyone. Two minimal-
// movement schemes live behind one interface so the migration cost of ring
// churn can be ablated:
//
//   * kRch — the paper's Ranged Consistent Hashing on a vnode ring: each
//     member contributes `vnodes` points; an item's replicas are the first
//     r distinct members clockwise from its hash. Point positions depend
//     only on (seed, member, vnode), so a ring over members {0..N-1} is
//     point-for-point the ring RangedConsistentHashPlacement builds — an
//     elastic group whose membership never changes places exactly like a
//     static one.
//   * kMultiProbe — multi-probe consistent hashing (Appleton & O'Reilly,
//     PAPERS.md): one point per member, k probes per item; a member's rank
//     is ordered by its closest clockwise distance to any probe. No vnodes
//     means O(members) ring state, and a join still only captures the
//     items whose best probe lands closer to the new point than to every
//     incumbent — the same ~1/(N+1) movement bound with far less metadata.
//
// Lookups are stateless and deterministic: any client recomputes replica
// sets from (config, member set, item) alone, which is what lets stale
// clients re-plan against a newer RingEpoch without coordination.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace rnb::elastic {

enum class RingScheme {
  kRch,         // vnode ring, RCH clockwise walk
  kMultiProbe,  // one point per member, k probes per item
};

std::string_view to_string(RingScheme scheme) noexcept;

struct MemberRingConfig {
  RingScheme scheme = RingScheme::kRch;
  /// Replicas per item, distinguished copy included; clamped to the member
  /// count when the ring is smaller.
  std::uint32_t replication = 3;
  std::uint64_t seed = 1;
  /// Points per member for kRch — 64 matches the static RCH placement, so
  /// an unchanged member set {0..N-1} reproduces its replica sets exactly.
  std::uint32_t vnodes = 64;
  /// Probes per lookup for kMultiProbe (the paper's load-balance knob; 21
  /// probes give ~1.05 peak-to-average).
  std::uint32_t probes = 21;
};

class MemberRing {
 public:
  /// Build a ring over `members` (physical server ids, any values; the set
  /// is deduplicated and kept sorted).
  MemberRing(const MemberRingConfig& config, std::vector<ServerId> members);

  const MemberRingConfig& config() const noexcept { return config_; }
  const std::vector<ServerId>& members() const noexcept { return members_; }
  bool contains(ServerId server) const noexcept;

  /// Effective replicas per item: min(configured replication, members).
  std::uint32_t replication() const noexcept;

  /// Write the replica members of `item` into `out` (size() ==
  /// replication()) in replica order; out[0] is the distinguished copy.
  /// All entries are distinct members.
  void replicas(ItemId item, std::span<ServerId> out) const;

  std::vector<ServerId> replicas(ItemId item) const {
    std::vector<ServerId> out(replication());
    replicas(item, out);
    return out;
  }

  ServerId distinguished(ItemId item) const { return replicas(item)[0]; }

  /// Minimal-movement derived rings: the returned ring shares every
  /// incumbent's points, so only assignments the new (or removed) member's
  /// points win (or owned) change.
  MemberRing with_member(ServerId server) const;
  MemberRing without_member(ServerId server) const;

 private:
  struct Point {
    std::uint64_t hash;
    ServerId server;
    friend bool operator<(const Point& a, const Point& b) noexcept {
      return a.hash < b.hash || (a.hash == b.hash && a.server < b.server);
    }
  };

  void rebuild_points();
  void replicas_rch(ItemId item, std::span<ServerId> out) const;
  void replicas_multi_probe(ItemId item, std::span<ServerId> out) const;

  MemberRingConfig config_;
  std::vector<ServerId> members_;  // sorted, unique
  std::vector<Point> ring_;        // sorted by (hash, server)
};

}  // namespace rnb::elastic
