// Versioned ring epochs: the membership history the whole cluster agrees on.
//
// Every membership change produces a new immutable RingEpoch — (epoch
// number, member ring) — and the EpochStore hands out shared_ptr snapshots,
// so a client can plan a whole multi-get against one consistent view while
// the controller installs the next one underneath. The epoch number is the
// staleness currency on the wire: clients tag requests with the epoch they
// planned against, servers configured for a newer epoch answer WRONG_EPOCH,
// and the client re-plans from a fresh snapshot (dserve/cluster_client).
//
// Transitions are two-phase on purpose: propose_*() builds epoch N+1
// without publishing it, the MigrationDriver streams affected keys while
// epoch N still serves, and only then does commit() make N+1 current.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hpp"
#include "elastic/member_ring.hpp"

namespace rnb::elastic {

/// One immutable membership version. Epoch numbers start at 1 so tagging a
/// frame with epoch 0 can mean "no tag" on the wire, mirroring the trace
/// tag's absent encoding.
class RingEpoch {
 public:
  RingEpoch(std::uint64_t epoch, MemberRing ring)
      : epoch_(epoch), ring_(std::move(ring)) {}

  std::uint64_t epoch() const noexcept { return epoch_; }
  const MemberRing& ring() const noexcept { return ring_; }

  const std::vector<ServerId>& members() const noexcept {
    return ring_.members();
  }
  std::uint32_t replication() const noexcept { return ring_.replication(); }
  bool contains(ServerId server) const noexcept {
    return ring_.contains(server);
  }
  std::vector<ServerId> replicas(ItemId item) const {
    return ring_.replicas(item);
  }

 private:
  std::uint64_t epoch_;
  MemberRing ring_;
};

/// Thread-safe holder of the current epoch plus the propose/commit seam the
/// membership controller drives. Reads are snapshot copies of a shared_ptr,
/// so lookups on a captured epoch never block on a concurrent commit.
class EpochStore {
 public:
  EpochStore(const MemberRingConfig& config,
             std::vector<ServerId> initial_members);

  std::shared_ptr<const RingEpoch> current() const;
  std::uint64_t epoch() const;

  /// Build (but do not publish) the next epoch with `server` added/removed.
  std::shared_ptr<const RingEpoch> propose_join(ServerId server) const;
  std::shared_ptr<const RingEpoch> propose_leave(ServerId server) const;

  /// Publish a proposed epoch. Must be exactly current()+1 — commits are
  /// serialized through the controller, never raced.
  void commit(std::shared_ptr<const RingEpoch> next);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const RingEpoch> current_;
};

}  // namespace rnb::elastic
