#include "elastic/migration.hpp"

#include <cstddef>
#include <optional>

#include "common/hash.hpp"
#include "kv/protocol.hpp"
#include "obs/trace.hpp"

namespace rnb::elastic {
namespace {

constexpr std::size_t kNoRank = static_cast<std::size_t>(-1);

/// Key -> item id, the same hash every wire client uses
/// (dserve::ClusterView::item_of), so migration re-places entries exactly
/// where clients will look for them.
ItemId item_of(std::string_view key) noexcept { return fnv1a64(key); }

std::size_t rank_of(const std::vector<ServerId>& replicas, ServerId server) {
  for (std::size_t r = 0; r < replicas.size(); ++r)
    if (replicas[r] == server) return r;
  return kNoRank;
}

/// Whether `source` owns the entry's distinguished copy. Decided by the
/// *old ring*, not the scanned pin flag: earlier transfers in the same
/// migration may already have demoted this copy in place (the old home is
/// some other source's rank-preserving target), and trusting the mutated
/// flag would skip moving the pin entirely. Entries the old ring never
/// placed here (leftovers) fall back to the flag.
bool owns_distinguished(ServerId source, const kv::Value& entry,
                        const RingEpoch& from) {
  const std::size_t rank = rank_of(from.replicas(item_of(entry.key)), source);
  if (rank == kNoRank) return (entry.flags & kv::kValueFlagPinned) != 0;
  return rank == 0;
}

}  // namespace

MigrationDriver::MigrationDriver(kv::KvTransport& transport,
                                 const MigrationConfig& config)
    : transport_(transport),
      config_(config),
      exchange_(transport_, config.failure) {}

bool MigrationDriver::migrate(const RingEpoch& from, const RingEpoch& to) {
  const std::vector<ServerId>& sources = from.members();
  if (checkpoint_ == MigrationCheckpoint{}) pending_deletes_.clear();
  obs::SpanScope span("migrate", "elastic");
  span.arg("from_epoch", static_cast<std::int64_t>(from.epoch()));
  span.arg("to_epoch", static_cast<std::int64_t>(to.epoch()));
  while (checkpoint_.member_index < sources.size()) {
    const ServerId source = sources[checkpoint_.member_index];
    obs::SpanScope source_span("migrate_source", "elastic");
    source_span.arg("server", static_cast<std::int64_t>(source));
    while (true) {
      request_.clear();
      kv::encode_scan(checkpoint_.cursor, config_.batch_keys, request_);
      double elapsed = 0.0;
      const bool ok = exchange_.exchange(
          source, request_, response_, elapsed,
          [](const std::string& r) {
            return kv::parse_scan_page(r).has_value();
          });
      stats_.elapsed += elapsed;
      if (!ok) {
        ++stats_.failed_transfers;
        return false;
      }
      const std::optional<kv::ScanPage> page =
          kv::parse_scan_page(response_);
      ++stats_.pages;
      stats_.entries_scanned += page->entries.size();
      // Distinguished copies first: the pinned copy must exist at its new
      // home before any replica-class shuffling for the same page.
      for (const kv::Value& v : page->entries)
        if (owns_distinguished(source, v, from))
          if (!transfer_pinned(source, v, to)) return false;
      for (const kv::Value& v : page->entries)
        if (!owns_distinguished(source, v, from))
          if (!transfer_replica(source, v, from, to)) return false;
      if (page->next_cursor == 0) break;
      checkpoint_.cursor = page->next_cursor;
    }
    // Scan exhausted: now it is safe to shrink the source table.
    while (!pending_deletes_.empty()) {
      if (!erase(source, pending_deletes_.back())) return false;
      ++stats_.source_deletes;
      pending_deletes_.pop_back();
    }
    ++checkpoint_.member_index;
    checkpoint_.cursor = 0;
  }
  checkpoint_ = {};
  return true;
}

bool MigrationDriver::transfer_pinned(ServerId source, const kv::Value& entry,
                                      const RingEpoch& to) {
  const std::vector<ServerId> now = to.replicas(item_of(entry.key));
  const std::size_t rank = rank_of(now, source);
  if (now[0] != source) {
    if (!store(now[0], entry.key, entry.data, /*pin=*/true)) return false;
    ++stats_.pinned_moved;
  }
  if (rank == kNoRank) {
    if (config_.delete_source) pending_deletes_.push_back(entry.key);
  } else if (rank != 0) {
    // Still a replica home, just not the distinguished one: re-set the
    // same bytes unpinned, releasing the pinned accounting into the
    // ordinary evictable class.
    if (!store(source, entry.key, entry.data, /*pin=*/false)) return false;
    ++stats_.demotions;
  }
  return true;
}

bool MigrationDriver::transfer_replica(ServerId source,
                                       const kv::Value& entry,
                                       const RingEpoch& from,
                                       const RingEpoch& to) {
  const ItemId item = item_of(entry.key);
  const std::vector<ServerId> old_replicas = from.replicas(item);
  const std::vector<ServerId> new_replicas = to.replicas(item);
  const std::size_t rank = rank_of(old_replicas, source);
  // Rank-preserving hand-off: the old holder of rank r feeds the new
  // holder of rank r, so each receiving server hears from exactly one
  // source and replication width is preserved without fan-out.
  if (rank != kNoRank && rank < new_replicas.size()) {
    const ServerId target = new_replicas[rank];
    if (target != source) {
      if (!store(target, entry.key, entry.data, /*pin=*/false)) return false;
      ++stats_.replicas_copied;
    }
  }
  if (config_.delete_source && rank_of(new_replicas, source) == kNoRank)
    pending_deletes_.push_back(entry.key);
  return true;
}

bool MigrationDriver::store(ServerId server, const std::string& key,
                            const std::string& data, bool pin) {
  request_.clear();
  kv::encode_set(key, data, pin, request_);
  double elapsed = 0.0;
  const bool ok = exchange_.exchange(server, request_, response_, elapsed);
  stats_.elapsed += elapsed;
  if (!ok) ++stats_.failed_transfers;
  // "SERVER_ERROR out of memory" on an unpinned copy is a valid outcome:
  // the replica class is cache, and the receiver declined this entry the
  // same way it would decline a client write-back.
  return ok;
}

bool MigrationDriver::erase(ServerId server, const std::string& key) {
  request_.clear();
  kv::encode_delete(key, request_);
  double elapsed = 0.0;
  const bool ok = exchange_.exchange(server, request_, response_, elapsed);
  stats_.elapsed += elapsed;
  if (!ok) ++stats_.failed_transfers;
  return ok;
}

}  // namespace rnb::elastic
