#include "elastic/epoch.hpp"

#include "common/error.hpp"

namespace rnb::elastic {

EpochStore::EpochStore(const MemberRingConfig& config,
                       std::vector<ServerId> initial_members)
    : current_(std::make_shared<const RingEpoch>(
          1, MemberRing(config, std::move(initial_members)))) {}

std::shared_ptr<const RingEpoch> EpochStore::current() const {
  const std::lock_guard lock(mu_);
  return current_;
}

std::uint64_t EpochStore::epoch() const {
  const std::lock_guard lock(mu_);
  return current_->epoch();
}

std::shared_ptr<const RingEpoch> EpochStore::propose_join(
    ServerId server) const {
  const std::shared_ptr<const RingEpoch> cur = current();
  RNB_REQUIRE(!cur->contains(server));
  return std::make_shared<const RingEpoch>(cur->epoch() + 1,
                                           cur->ring().with_member(server));
}

std::shared_ptr<const RingEpoch> EpochStore::propose_leave(
    ServerId server) const {
  const std::shared_ptr<const RingEpoch> cur = current();
  RNB_REQUIRE(cur->contains(server));
  RNB_REQUIRE(cur->members().size() > 1);
  return std::make_shared<const RingEpoch>(cur->epoch() + 1,
                                           cur->ring().without_member(server));
}

void EpochStore::commit(std::shared_ptr<const RingEpoch> next) {
  RNB_REQUIRE(next != nullptr);
  const std::lock_guard lock(mu_);
  RNB_REQUIRE(next->epoch() == current_->epoch() + 1);
  current_ = std::move(next);
}

}  // namespace rnb::elastic
