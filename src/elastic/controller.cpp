#include "elastic/controller.hpp"

#include "kv/protocol.hpp"
#include "obs/trace.hpp"

namespace rnb::elastic {

MembershipController::MembershipController(
    kv::KvTransport& transport, EpochStore& store,
    const MembershipControllerConfig& config)
    : transport_(transport), store_(store), config_(config) {}

bool MembershipController::join(ServerId server) {
  obs::SpanScope span("membership_join", "elastic");
  span.arg("server", static_cast<std::int64_t>(server));
  if (!transition(store_.propose_join(server))) return false;
  ++joins_;
  return true;
}

bool MembershipController::leave(ServerId server) {
  obs::SpanScope span("membership_leave", "elastic");
  span.arg("server", static_cast<std::int64_t>(server));
  if (!transition(store_.propose_leave(server))) return false;
  ++leaves_;
  return true;
}

bool MembershipController::transition(
    std::shared_ptr<const RingEpoch> next) {
  const std::shared_ptr<const RingEpoch> cur = store_.current();
  obs::SpanScope span("membership_transition", "elastic");
  span.arg("epoch", static_cast<std::int64_t>(next->epoch()));
  // The main pass only copies: clients are still planning against the old
  // ring while it runs, so deleting outgoing copies here would serve them
  // authoritative misses mid-transition. Deletes wait for the post-bump
  // sweep, when every reachable plan resolves against the new ring.
  MigrationConfig copy_config = config_.migration;
  copy_config.delete_source = false;
  MigrationDriver driver(transport_, copy_config);
  bool ok = driver.migrate(*cur, *next);
  for (std::uint32_t attempt = 0;
       !ok && attempt < config_.resume_attempts; ++attempt) {
    ++resumes_;
    ok = driver.migrate(*cur, *next);
  }
  accumulate(driver.stats());
  if (!ok) {
    ++failed_transitions_;
    span.note("outcome", "migration_failed");
    return false;
  }
  store_.commit(next);
  if (publish_) publish_(next);
  if (!bump_epoch(*next)) {
    ++failed_transitions_;
    span.note("outcome", "bump_failed");
    return false;
  }
  if (config_.catch_up_pass || config_.migration.delete_source) {
    // Sweep writes that landed on the outgoing placement while the main
    // pass ran, and (with delete_source) retire the outgoing copies the
    // copy pass deliberately left behind — both are safe only now, post
    // bump, when no stale-tagged operation can land. One pass converges;
    // a failure here leaves only cache-class copies misplaced and shows up
    // in failed_transfers rather than failing the committed transition.
    MigrationDriver sweep(transport_, config_.migration);
    sweep.migrate(*cur, *next);
    accumulate(sweep.stats());
  }
  return true;
}

bool MembershipController::sync_epoch() {
  return bump_epoch(*store_.current());
}

bool MembershipController::bump_epoch(const RingEpoch& next) {
  kv::KvExchange exchange(transport_, config_.migration.failure);
  for (const ServerId s : next.members()) {
    request_.clear();
    kv::encode_epoch(next.epoch(), request_);
    double elapsed = 0.0;
    const bool ok = exchange.exchange(
        s, request_, response_, elapsed,
        [](const std::string& r) { return kv::parse_simple(r) == "OK"; });
    migration_stats_.elapsed += elapsed;
    if (!ok) return false;
  }
  return true;
}

void MembershipController::accumulate(const MigrationStats& stats) {
  migration_stats_.pages += stats.pages;
  migration_stats_.entries_scanned += stats.entries_scanned;
  migration_stats_.pinned_moved += stats.pinned_moved;
  migration_stats_.replicas_copied += stats.replicas_copied;
  migration_stats_.demotions += stats.demotions;
  migration_stats_.source_deletes += stats.source_deletes;
  migration_stats_.failed_transfers += stats.failed_transfers;
  migration_stats_.elapsed += stats.elapsed;
}

void MembershipController::export_metrics(
    obs::MetricsRegistry& registry) const {
  registry
      .gauge("rnb_elastic_epoch", "Current committed ring epoch")
      .set(static_cast<double>(store_.epoch()));
  registry
      .gauge("rnb_elastic_members",
             "Members in the current ring epoch")
      .set(static_cast<double>(store_.current()->members().size()));
  registry.counter("rnb_elastic_joins_total", "Committed join transitions")
      .inc(joins_);
  registry.counter("rnb_elastic_leaves_total", "Committed leave transitions")
      .inc(leaves_);
  registry
      .counter("rnb_elastic_failed_transitions_total",
               "Transitions abandoned past the resume budget")
      .inc(failed_transitions_);
  registry
      .counter("rnb_elastic_migration_resumes_total",
               "Checkpoint resumes across all transitions")
      .inc(resumes_);
  registry
      .counter("rnb_elastic_migration_pages_total",
               "Scan pages streamed by migration")
      .inc(migration_stats_.pages);
  registry
      .counter("rnb_elastic_entries_scanned_total",
               "Entries examined by migration scans")
      .inc(migration_stats_.entries_scanned);
  registry
      .counter("rnb_elastic_pinned_moved_total",
               "Distinguished copies re-homed")
      .inc(migration_stats_.pinned_moved);
  registry
      .counter("rnb_elastic_replicas_copied_total",
               "Replica-class copies placed on new homes")
      .inc(migration_stats_.replicas_copied);
  registry
      .counter("rnb_elastic_demotions_total",
               "Pinned copies demoted to the evictable class")
      .inc(migration_stats_.demotions);
  registry
      .counter("rnb_elastic_source_deletes_total",
               "Copies deleted from their outgoing homes")
      .inc(migration_stats_.source_deletes);
  registry
      .counter("rnb_elastic_failed_transfers_total",
               "Migration exchanges that exhausted retries")
      .inc(migration_stats_.failed_transfers);
  registry
      .gauge("rnb_elastic_migration_seconds",
             "Virtual seconds spent in migration exchanges")
      .set(migration_stats_.elapsed);
}

}  // namespace rnb::elastic
