// MembershipController: the join/leave state machine over an EpochStore.
//
// One transition = one epoch. The controller drives the two-phase protocol
// end to end:
//
//   propose        build epoch N+1 (unpublished; epoch N keeps serving)
//   migrate        MigrationDriver streams affected copies N -> N+1,
//                  resuming from its checkpoint on transient failure
//   commit         EpochStore publishes N+1
//   publish        the serving tier's view (ClusterView) installs the new
//                  ring — BEFORE servers learn the epoch, so a client
//                  bounced with WRONG_EPOCH always finds the newer ring
//                  when it refreshes
//   bump           `epoch N+1` to every member; from here stale-tagged
//                  frames bounce and re-plan
//   catch-up       one more migration pass sweeping writes that landed on
//                  old placement while the main pass ran (after the bump
//                  no stale write can land, so the sweep converges)
//
// The controller deliberately knows nothing about dserve: the serving tier
// hands it a publish callback, keeping the dependency arrow pointing one
// way (dserve -> elastic).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/types.hpp"
#include "elastic/epoch.hpp"
#include "elastic/migration.hpp"
#include "obs/metrics.hpp"

namespace rnb::elastic {

struct MembershipControllerConfig {
  MigrationConfig migration;
  /// migrate() resume attempts per transition before giving up.
  std::uint32_t resume_attempts = 3;
  /// Post-bump sweep for writes that raced the main migration pass.
  bool catch_up_pass = true;
};

class MembershipController {
 public:
  /// `transport` must reach every server id any epoch will contain.
  MembershipController(kv::KvTransport& transport, EpochStore& store,
                       const MembershipControllerConfig& config);

  /// Called with each committed epoch, before the member servers are
  /// bumped to it (see the header comment for why that order).
  using PublishFn =
      std::function<void(std::shared_ptr<const RingEpoch>)>;
  void set_publish(PublishFn publish) { publish_ = std::move(publish); }

  /// Add / remove one member. Returns false when migration failed past
  /// its resume budget — the store then still holds the old epoch and the
  /// call may simply be repeated (every transfer is an idempotent re-set).
  bool join(ServerId server);
  bool leave(ServerId server);

  /// Install the store's *current* epoch on its members (boot-time: until
  /// a server hears an epoch it accepts any tag, so a freshly started
  /// elastic group syncs once before serving).
  bool sync_epoch();

  std::uint64_t epoch() const { return store_.epoch(); }
  const MigrationStats& migration_stats() const noexcept {
    return migration_stats_;
  }
  std::uint64_t joins() const noexcept { return joins_; }
  std::uint64_t leaves() const noexcept { return leaves_; }
  std::uint64_t failed_transitions() const noexcept {
    return failed_transitions_;
  }
  std::uint64_t resumes() const noexcept { return resumes_; }

  /// Contribute the rnb_elastic_* series (membership + migration totals)
  /// to a metrics registry — the seam benches and stats hooks use.
  void export_metrics(obs::MetricsRegistry& registry) const;

 private:
  bool transition(std::shared_ptr<const RingEpoch> next);
  bool bump_epoch(const RingEpoch& next);
  void accumulate(const MigrationStats& stats);

  kv::KvTransport& transport_;
  EpochStore& store_;
  MembershipControllerConfig config_;
  PublishFn publish_;
  MigrationStats migration_stats_;  // summed across all transitions
  std::uint64_t joins_ = 0;
  std::uint64_t leaves_ = 0;
  std::uint64_t failed_transitions_ = 0;
  std::uint64_t resumes_ = 0;
  std::string request_;
  std::string response_;
};

}  // namespace rnb::elastic
