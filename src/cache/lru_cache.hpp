// Slot-based LRU cache over 64-bit keys.
//
// Models a memcached server's eviction behaviour under the paper's
// equal-item-size assumption (Section III-B): capacity is a slot count, one
// slot per item. The implementation is an open-addressed map from key to an
// index into a node pool threaded as an intrusive doubly-linked list —
// no per-operation allocation, which matters because the full simulator
// performs hundreds of millions of touches per sweep.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace rnb {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class LruCache {
 public:
  /// Cache holding at most `capacity` keys; capacity 0 means "always miss".
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return index_.size(); }
  const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Lookup; on hit the key moves to MRU position.
  bool touch(ItemId key);

  /// Lookup without promoting the key or recording hit/miss stats; used by
  /// hitchhiking policies that must not perturb recency (Section III-C2).
  bool contains(ItemId key) const { return index_.contains(key); }

  /// Insert at MRU, evicting the LRU key when full. Re-inserting an existing
  /// key just promotes it. Returns true if an eviction happened.
  bool insert(ItemId key);

  /// Remove a key if present; returns true if it was there.
  bool erase(ItemId key);

  /// Key that would be evicted next (LRU end). Requires non-empty.
  ItemId lru_key() const;

  /// Keys from MRU to LRU (test/debug helper; O(n)).
  std::vector<ItemId> keys_mru_to_lru() const;

 private:
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  struct Node {
    ItemId key;
    std::uint32_t prev;
    std::uint32_t next;
  };

  void unlink(std::uint32_t idx);
  void push_front(std::uint32_t idx);

  std::size_t capacity_;
  std::unordered_map<ItemId, std::uint32_t> index_;
  std::vector<Node> pool_;
  std::vector<std::uint32_t> free_;
  std::uint32_t head_ = kNil;  // MRU
  std::uint32_t tail_ = kNil;  // LRU
  CacheStats stats_;
};

}  // namespace rnb
