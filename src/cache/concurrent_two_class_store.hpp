// Thread-safe two-service-class store: the server side of overbooking,
// sharded for concurrent access.
//
// TwoClassStore models one server's memory for the single-threaded
// simulators; this wrapper partitions the item space across S power-of-two
// shards (deterministic fmix64 of the item id), each shard owning a
// complete TwoClassStore — its pinned distinguished-copy set and its slice
// of the evictable replica class — behind one striped
// obs::InstrumentedSharedMutex:
//   shared     contains / is_pinned (hitchhike probes, no recency)
//   exclusive  read (recency moves), pin, write_replica, drop_replica
//
// Per-shard replica LRU over uniformly hashed item ids behaves like the
// global replica LRU at simulation sizes (Ji, Quan & Tan,
// arXiv:1801.02436); with one shard the wrapper is operation-for-operation
// identical to TwoClassStore, which the determinism tests pin.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "cache/two_class_store.hpp"
#include "common/hash.hpp"
#include "obs/contention.hpp"

namespace rnb {

class ConcurrentTwoClassStore {
 public:
  /// `replica_capacity` is the total evictable-slot budget, split evenly
  /// across shards. `num_shards` is rounded up to a power of two; 0 picks
  /// next_pow2(hardware threads).
  explicit ConcurrentTwoClassStore(
      std::size_t replica_capacity,
      ReplicaEvictionPolicy policy = ReplicaEvictionPolicy::kLru,
      std::size_t num_shards = 0);

  std::size_t shard_count() const noexcept { return shards_.size(); }
  std::size_t shard_index(ItemId item) const noexcept {
    return fmix64(item) & (shards_.size() - 1);
  }

  void pin(ItemId item);
  bool is_pinned(ItemId item) const;
  std::size_t pinned_count() const;

  /// Serve a read for `item`: pinned hits never miss, replica hits refresh
  /// recency (hence the exclusive shard lock). Returns true on hit.
  bool read(ItemId item);

  /// Peek without touching recency or stats (shared shard lock).
  bool contains(ItemId item) const;

  void write_replica(ItemId item);
  bool drop_replica(ItemId item);

  std::size_t replica_count() const;
  std::size_t replica_capacity() const noexcept { return replica_capacity_; }
  /// Aggregate replica-class stats across shards (associative sums).
  CacheStats replica_stats() const;

  /// Aggregate lock counters across shards; per-shard via shard_counters().
  obs::ContentionSnapshot lock_counters() const;
  obs::ContentionSnapshot shard_counters(std::size_t index) const {
    return shards_[index]->mu.counters();
  }

 private:
  struct alignas(64) Shard {
    Shard(std::size_t capacity, ReplicaEvictionPolicy policy)
        : store(capacity, policy) {}
    mutable obs::InstrumentedSharedMutex mu;
    TwoClassStore store;
  };

  Shard& shard(ItemId item) noexcept { return *shards_[shard_index(item)]; }
  const Shard& shard(ItemId item) const noexcept {
    return *shards_[shard_index(item)];
  }

  std::size_t replica_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rnb
