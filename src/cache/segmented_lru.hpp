// Segmented LRU (SLRU) — an alternative replica-class eviction policy.
//
// The paper (Section I-C) mentions developing "several approaches for
// handling two service classes in LRU based caching systems". Plain LRU
// lets a burst of one-shot replicas flush frequently-rehit replicas; SLRU
// protects items that have proven reuse: new keys enter a probationary
// segment, a second hit promotes to a protected segment, and protected
// overflow demotes back to probation instead of leaving the cache. The
// overbooking ablation compares LRU vs. SLRU as the replica class policy.
#pragma once

#include "cache/lru_cache.hpp"

namespace rnb {

class SegmentedLru {
 public:
  /// Total capacity split between segments; `protected_fraction` of the
  /// slots (rounded down) form the protected segment.
  SegmentedLru(std::size_t capacity, double protected_fraction = 0.8);

  std::size_t capacity() const noexcept {
    return probation_.capacity() + protected_.capacity();
  }
  std::size_t size() const noexcept {
    return probation_.size() + protected_.size();
  }

  /// Lookup with promotion: a probation hit moves the key to protected
  /// (possibly demoting a protected key back to probation).
  bool touch(ItemId key);

  bool contains(ItemId key) const {
    return probation_.contains(key) || protected_.contains(key);
  }

  /// Insert a new key into probation (evicting its LRU tail when full).
  void insert(ItemId key);

  bool erase(ItemId key);

  CacheStats stats() const noexcept;

 private:
  LruCache probation_;
  LruCache protected_;
  CacheStats stats_;
};

}  // namespace rnb
