#include "cache/segmented_lru.hpp"

#include <algorithm>

namespace rnb {

SegmentedLru::SegmentedLru(std::size_t capacity, double protected_fraction)
    : probation_(capacity -
                 static_cast<std::size_t>(static_cast<double>(capacity) *
                                          protected_fraction)),
      protected_(static_cast<std::size_t>(static_cast<double>(capacity) *
                                          protected_fraction)) {
  RNB_REQUIRE(protected_fraction >= 0.0 && protected_fraction <= 1.0);
}

bool SegmentedLru::touch(ItemId key) {
  if (protected_.contains(key)) {
    ++stats_.hits;
    protected_.touch(key);
    return true;
  }
  if (probation_.contains(key)) {
    ++stats_.hits;
    // Promote: move from probation to protected. If protected is full its
    // LRU key demotes to probation rather than leaving the cache.
    probation_.erase(key);
    if (protected_.capacity() == 0) {
      probation_.insert(key);
      return true;
    }
    if (protected_.size() == protected_.capacity()) {
      const ItemId demoted = protected_.lru_key();
      protected_.erase(demoted);
      probation_.insert(demoted);
    }
    protected_.insert(key);
    return true;
  }
  ++stats_.misses;
  return false;
}

void SegmentedLru::insert(ItemId key) {
  ++stats_.insertions;
  if (contains(key)) return;
  if (probation_.capacity() == 0) {
    // Degenerate all-protected configuration: admit directly.
    protected_.insert(key);
    return;
  }
  if (probation_.size() == probation_.capacity()) ++stats_.evictions;
  probation_.insert(key);
}

bool SegmentedLru::erase(ItemId key) {
  return probation_.erase(key) || protected_.erase(key);
}

CacheStats SegmentedLru::stats() const noexcept { return stats_; }

}  // namespace rnb
