// Two-service-class item store: the server side of overbooking.
//
// Paper Section III-C1/III-D: each item has one *distinguished* copy that is
// guaranteed resident ("will never suffer a miss") plus zero or more replica
// copies that live in an evictable cache class. The store models one
// server's memory as
//     pinned class   — distinguished copies mapped to this server; unbounded
//                      from the store's perspective (the cluster sizes it to
//                      exactly one copy of the data, the paper's 1.0 point),
//     replica class  — a bounded LRU (or SLRU) holding replica copies; this
//                      is where "declared replicas > physical memory"
//                      (overbooking) silently sheds cold copies.
#pragma once

#include <memory>
#include <unordered_set>
#include <variant>

#include "cache/arc_cache.hpp"
#include "cache/lru_cache.hpp"
#include "cache/segmented_lru.hpp"

namespace rnb {

enum class ReplicaEvictionPolicy { kLru, kSegmentedLru, kArc };

const char* to_string(ReplicaEvictionPolicy policy) noexcept;

class TwoClassStore {
 public:
  /// `replica_capacity` is the slot budget of the evictable replica class.
  explicit TwoClassStore(std::size_t replica_capacity,
                         ReplicaEvictionPolicy policy =
                             ReplicaEvictionPolicy::kLru);

  /// Mark `item`'s distinguished copy as resident on this server.
  void pin(ItemId item);
  bool is_pinned(ItemId item) const { return pinned_.contains(item); }
  std::size_t pinned_count() const noexcept { return pinned_.size(); }

  /// Serve a read for `item`. A pinned hit never misses; a replica hit
  /// refreshes recency. Returns true on hit.
  bool read(ItemId item);

  /// Peek without touching recency or stats (hitchhiker probes).
  bool contains(ItemId item) const;

  /// Install a replica copy (client write-back after a miss, or initial
  /// population). No-op when the item is pinned here — the distinguished
  /// copy already serves it.
  void write_replica(ItemId item);

  /// Drop a replica copy if present (used by the atomic-update scheme:
  /// "remove all but the distinguished copies before modifying").
  bool drop_replica(ItemId item);

  std::size_t replica_count() const noexcept;
  std::size_t replica_capacity() const noexcept { return replica_capacity_; }
  CacheStats replica_stats() const;

 private:
  std::size_t replica_capacity_;
  std::unordered_set<ItemId> pinned_;
  std::variant<LruCache, SegmentedLru, ArcCache> replicas_;
};

}  // namespace rnb
