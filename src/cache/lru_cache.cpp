#include "cache/lru_cache.hpp"

namespace rnb {

void LruCache::unlink(std::uint32_t idx) {
  Node& n = pool_[idx];
  if (n.prev != kNil)
    pool_[n.prev].next = n.next;
  else
    head_ = n.next;
  if (n.next != kNil)
    pool_[n.next].prev = n.prev;
  else
    tail_ = n.prev;
}

void LruCache::push_front(std::uint32_t idx) {
  Node& n = pool_[idx];
  n.prev = kNil;
  n.next = head_;
  if (head_ != kNil) pool_[head_].prev = idx;
  head_ = idx;
  if (tail_ == kNil) tail_ = idx;
}

bool LruCache::touch(ItemId key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  if (head_ != it->second) {
    unlink(it->second);
    push_front(it->second);
  }
  return true;
}

bool LruCache::insert(ItemId key) {
  ++stats_.insertions;
  if (capacity_ == 0) return false;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    if (head_ != it->second) {
      unlink(it->second);
      push_front(it->second);
    }
    return false;
  }
  bool evicted = false;
  if (index_.size() == capacity_) {
    const std::uint32_t victim = tail_;
    index_.erase(pool_[victim].key);
    unlink(victim);
    free_.push_back(victim);
    ++stats_.evictions;
    evicted = true;
  }
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
    pool_[idx].key = key;
  } else {
    idx = static_cast<std::uint32_t>(pool_.size());
    pool_.push_back(Node{key, kNil, kNil});
  }
  push_front(idx);
  index_.emplace(key, idx);
  return evicted;
}

bool LruCache::erase(ItemId key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  unlink(it->second);
  free_.push_back(it->second);
  index_.erase(it);
  return true;
}

ItemId LruCache::lru_key() const {
  RNB_REQUIRE(tail_ != kNil);
  return pool_[tail_].key;
}

std::vector<ItemId> LruCache::keys_mru_to_lru() const {
  std::vector<ItemId> out;
  out.reserve(index_.size());
  for (std::uint32_t i = head_; i != kNil; i = pool_[i].next)
    out.push_back(pool_[i].key);
  return out;
}

}  // namespace rnb
