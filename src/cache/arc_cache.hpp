// Adaptive Replacement Cache (Megiddo & Modha, FAST '03).
//
// Third replica-class eviction policy beside LRU and segmented LRU. ARC
// splits residents into T1 (seen once) and T2 (seen twice+) and keeps ghost
// lists B1/B2 of recently evicted keys; a hit in a ghost list adapts the
// target size p of T1, so the cache continuously re-balances between
// recency and frequency. For RnB replica caches this matters under mixed
// traffic: one-shot replica placements (cover noise) flow through T1
// without displacing the stable request-locality working set in T2.
// The overbooking ablation compares all three policies.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "cache/lru_cache.hpp"  // CacheStats
#include "common/types.hpp"

namespace rnb {

class ArcCache {
 public:
  explicit ArcCache(std::size_t capacity);

  std::size_t capacity() const noexcept { return capacity_; }
  /// Resident entries (T1 + T2); ghosts are metadata only.
  std::size_t size() const noexcept { return t1_.size() + t2_.size(); }

  /// Lookup; promotes within ARC's lists on hit.
  bool touch(ItemId key);

  /// Lookup without any state change.
  bool contains(ItemId key) const;

  /// Insert (or re-reference) a key, evicting per ARC's REPLACE rule.
  void insert(ItemId key);

  /// Remove a key from whichever list holds it (resident or ghost).
  bool erase(ItemId key);

  CacheStats stats() const noexcept { return stats_; }

  /// Adaptation target for T1 (exposed for tests: recency pressure grows
  /// p, frequency pressure shrinks it).
  std::size_t p() const noexcept { return p_; }

 private:
  enum class ListId : std::uint8_t { kT1, kT2, kB1, kB2 };

  struct Where {
    ListId list;
    std::list<ItemId>::iterator pos;
  };

  std::list<ItemId>& list_of(ListId id) noexcept;

  /// Move `key` to the MRU end of `target`, updating the index.
  void move_to(ItemId key, ListId target);

  /// ARC's REPLACE: evict the LRU of T1 or T2 (by p and the B2 hint) into
  /// its ghost list.
  void replace(bool hit_in_b2);

  /// Drop the LRU ghost of `list`.
  void drop_ghost(ListId list);

  std::size_t capacity_;
  std::size_t p_ = 0;  // target size of T1
  std::list<ItemId> t1_, t2_, b1_, b2_;  // front = MRU
  std::unordered_map<ItemId, Where> index_;
  CacheStats stats_;
};

}  // namespace rnb
