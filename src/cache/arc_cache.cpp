#include "cache/arc_cache.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rnb {

ArcCache::ArcCache(std::size_t capacity) : capacity_(capacity) {}

std::list<ItemId>& ArcCache::list_of(ListId id) noexcept {
  switch (id) {
    case ListId::kT1:
      return t1_;
    case ListId::kT2:
      return t2_;
    case ListId::kB1:
      return b1_;
    case ListId::kB2:
      return b2_;
  }
  return t1_;  // unreachable
}

void ArcCache::move_to(ItemId key, ListId target) {
  const auto it = index_.find(key);
  RNB_REQUIRE(it != index_.end());
  std::list<ItemId>& dst = list_of(target);
  std::list<ItemId>& src = list_of(it->second.list);
  dst.splice(dst.begin(), src, it->second.pos);
  it->second.list = target;
  it->second.pos = dst.begin();
}

void ArcCache::drop_ghost(ListId list) {
  std::list<ItemId>& l = list_of(list);
  RNB_REQUIRE(!l.empty());
  index_.erase(l.back());
  l.pop_back();
}

void ArcCache::replace(bool hit_in_b2) {
  // Megiddo & Modha's REPLACE: evict from T1 if it exceeds the target p
  // (or exactly meets it during a B2 hit), else from T2.
  const bool from_t1 =
      !t1_.empty() &&
      (t1_.size() > p_ || (hit_in_b2 && t1_.size() == p_ && p_ > 0) ||
       t2_.empty());
  if (from_t1) {
    const ItemId victim = t1_.back();
    move_to(victim, ListId::kB1);
  } else {
    RNB_REQUIRE(!t2_.empty());
    const ItemId victim = t2_.back();
    move_to(victim, ListId::kB2);
  }
  ++stats_.evictions;
}

bool ArcCache::touch(ItemId key) {
  const auto it = index_.find(key);
  if (it == index_.end() ||
      (it->second.list != ListId::kT1 && it->second.list != ListId::kT2)) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  move_to(key, ListId::kT2);  // any repeat reference marks frequency
  return true;
}

bool ArcCache::contains(ItemId key) const {
  const auto it = index_.find(key);
  return it != index_.end() &&
         (it->second.list == ListId::kT1 || it->second.list == ListId::kT2);
}

void ArcCache::insert(ItemId key) {
  ++stats_.insertions;
  if (capacity_ == 0) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    switch (it->second.list) {
      case ListId::kT1:
      case ListId::kT2:
        move_to(key, ListId::kT2);
        return;
      case ListId::kB1: {
        // Recency ghost hit: grow T1's target.
        const std::size_t delta =
            std::max<std::size_t>(1, b2_.size() / std::max<std::size_t>(
                                          b1_.size(), 1));
        p_ = std::min(capacity_, p_ + delta);
        if (size() >= capacity_) replace(false);
        move_to(key, ListId::kT2);
        return;
      }
      case ListId::kB2: {
        // Frequency ghost hit: shrink T1's target.
        const std::size_t delta =
            std::max<std::size_t>(1, b1_.size() / std::max<std::size_t>(
                                          b2_.size(), 1));
        p_ = p_ > delta ? p_ - delta : 0;
        if (size() >= capacity_) replace(true);
        move_to(key, ListId::kT2);
        return;
      }
    }
  }
  // Brand-new key: ARC case IV (Megiddo & Modha, Fig. 4).
  const std::size_t l1 = t1_.size() + b1_.size();
  const std::size_t total = l1 + t2_.size() + b2_.size();
  if (l1 == capacity_) {
    // Case A: L1 is full.
    if (t1_.size() < capacity_) {
      drop_ghost(ListId::kB1);
      replace(false);
    } else {
      // B1 empty, T1 fills the cache: evict T1's LRU outright (no ghost —
      // L1 must not exceed c).
      const ItemId victim = t1_.back();
      t1_.pop_back();
      index_.erase(victim);
      ++stats_.evictions;
    }
  } else if (total >= capacity_) {
    // Case B: room in L1's quota but the directory is at/over capacity.
    if (total >= 2 * capacity_) drop_ghost(ListId::kB2);
    if (size() >= capacity_) replace(false);
  }
  t1_.push_front(key);
  index_[key] = Where{ListId::kT1, t1_.begin()};
}

bool ArcCache::erase(ItemId key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  list_of(it->second.list).erase(it->second.pos);
  index_.erase(it);
  return true;
}

}  // namespace rnb
