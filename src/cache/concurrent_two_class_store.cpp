#include "cache/concurrent_two_class_store.hpp"

#include "common/sharding.hpp"

namespace rnb {

ConcurrentTwoClassStore::ConcurrentTwoClassStore(std::size_t replica_capacity,
                                                 ReplicaEvictionPolicy policy,
                                                 std::size_t num_shards)
    : replica_capacity_(replica_capacity) {
  const std::size_t n = resolve_shard_count(num_shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<Shard>(replica_capacity / n, policy));
}

void ConcurrentTwoClassStore::pin(ItemId item) {
  Shard& s = shard(item);
  const std::unique_lock lock(s.mu);
  s.store.pin(item);
}

bool ConcurrentTwoClassStore::is_pinned(ItemId item) const {
  const Shard& s = shard(item);
  const std::shared_lock lock(s.mu);
  return s.store.is_pinned(item);
}

std::size_t ConcurrentTwoClassStore::pinned_count() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    const std::shared_lock lock(s->mu);
    total += s->store.pinned_count();
  }
  return total;
}

bool ConcurrentTwoClassStore::read(ItemId item) {
  Shard& s = shard(item);
  const std::unique_lock lock(s.mu);
  return s.store.read(item);
}

bool ConcurrentTwoClassStore::contains(ItemId item) const {
  const Shard& s = shard(item);
  const std::shared_lock lock(s.mu);
  return s.store.contains(item);
}

void ConcurrentTwoClassStore::write_replica(ItemId item) {
  Shard& s = shard(item);
  const std::unique_lock lock(s.mu);
  s.store.write_replica(item);
}

bool ConcurrentTwoClassStore::drop_replica(ItemId item) {
  Shard& s = shard(item);
  const std::unique_lock lock(s.mu);
  return s.store.drop_replica(item);
}

std::size_t ConcurrentTwoClassStore::replica_count() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    const std::shared_lock lock(s->mu);
    total += s->store.replica_count();
  }
  return total;
}

CacheStats ConcurrentTwoClassStore::replica_stats() const {
  CacheStats total;
  for (const auto& s : shards_) {
    const std::shared_lock lock(s->mu);
    const CacheStats st = s->store.replica_stats();
    total.hits += st.hits;
    total.misses += st.misses;
    total.insertions += st.insertions;
    total.evictions += st.evictions;
  }
  return total;
}

obs::ContentionSnapshot ConcurrentTwoClassStore::lock_counters() const {
  obs::ContentionSnapshot total;
  for (const auto& s : shards_) total += s->mu.counters();
  return total;
}

}  // namespace rnb
