#include "cache/two_class_store.hpp"

namespace rnb {

const char* to_string(ReplicaEvictionPolicy policy) noexcept {
  switch (policy) {
    case ReplicaEvictionPolicy::kLru:
      return "lru";
    case ReplicaEvictionPolicy::kSegmentedLru:
      return "slru";
    case ReplicaEvictionPolicy::kArc:
      return "arc";
  }
  return "?";
}

namespace {

std::variant<LruCache, SegmentedLru, ArcCache> make_replica_cache(
    std::size_t capacity, ReplicaEvictionPolicy policy) {
  switch (policy) {
    case ReplicaEvictionPolicy::kLru:
      return std::variant<LruCache, SegmentedLru, ArcCache>(
          std::in_place_type<LruCache>, capacity);
    case ReplicaEvictionPolicy::kSegmentedLru:
      return std::variant<LruCache, SegmentedLru, ArcCache>(
          std::in_place_type<SegmentedLru>, capacity);
    case ReplicaEvictionPolicy::kArc:
      return std::variant<LruCache, SegmentedLru, ArcCache>(
          std::in_place_type<ArcCache>, capacity);
  }
  return std::variant<LruCache, SegmentedLru, ArcCache>(
      std::in_place_type<LruCache>, capacity);
}

}  // namespace

TwoClassStore::TwoClassStore(std::size_t replica_capacity,
                             ReplicaEvictionPolicy policy)
    : replica_capacity_(replica_capacity),
      replicas_(make_replica_cache(replica_capacity, policy)) {}

void TwoClassStore::pin(ItemId item) { pinned_.insert(item); }

bool TwoClassStore::read(ItemId item) {
  if (pinned_.contains(item)) return true;
  return std::visit([&](auto& cache) { return cache.touch(item); },
                    replicas_);
}

bool TwoClassStore::contains(ItemId item) const {
  if (pinned_.contains(item)) return true;
  return std::visit([&](const auto& cache) { return cache.contains(item); },
                    replicas_);
}

void TwoClassStore::write_replica(ItemId item) {
  if (pinned_.contains(item)) return;
  std::visit([&](auto& cache) { cache.insert(item); }, replicas_);
}

bool TwoClassStore::drop_replica(ItemId item) {
  return std::visit([&](auto& cache) { return cache.erase(item); },
                    replicas_);
}

std::size_t TwoClassStore::replica_count() const noexcept {
  return std::visit([](const auto& cache) { return cache.size(); },
                    replicas_);
}

CacheStats TwoClassStore::replica_stats() const {
  return std::visit([](const auto& cache) -> CacheStats { return cache.stats(); },
                    replicas_);
}

}  // namespace rnb
