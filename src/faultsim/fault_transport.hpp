// KvTransport decorator that injects scheduled faults.
//
// Wraps any real transport (loopback, slab loopback, TCP) and applies a
// FaultSchedule to every roundtrip: crash windows reject the attempt,
// message drops lose it, truncation corrupts the response bytes mid-frame,
// and "partial" strips trailing VALUE blocks while keeping the frame
// well-formed — the short multi-get a overloaded server actually sends.
// Each roundtrip advances the logical tick, so a fixed (spec, call
// sequence) pair replays the exact same fault pattern; retries are new
// ticks and therefore fresh draws.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "faultsim/fault_schedule.hpp"
#include "kv/kv_transport.hpp"

namespace rnb::faultsim {

class FaultInjectingTransport final : public kv::KvTransport {
 public:
  FaultInjectingTransport(kv::KvTransport& inner, FaultSchedule schedule)
      : inner_(inner), schedule_(std::move(schedule)) {}

  ServerId num_servers() const noexcept override {
    return inner_.num_servers();
  }

  kv::TransportResult roundtrip(ServerId s, std::string_view request,
                                std::string& response) override;

  /// Faults actually dealt, for assertions and bench reporting.
  struct Stats {
    std::uint64_t attempts = 0;
    std::uint64_t delivered = 0;
    std::uint64_t down_rejections = 0;
    std::uint64_t drops = 0;
    std::uint64_t truncations = 0;
    std::uint64_t partials = 0;
  };
  Stats stats() const {
    const std::lock_guard lock(mu_);
    return stats_;
  }

  Tick tick() const {
    const std::lock_guard lock(mu_);
    return tick_;
  }

  const FaultSchedule& schedule() const noexcept { return schedule_; }

 private:
  kv::KvTransport& inner_;
  FaultSchedule schedule_;
  mutable std::mutex mu_;  // guards tick_ and stats_ (inner locks itself)
  Tick tick_ = 0;
  Stats stats_;
};

}  // namespace rnb::faultsim
