#include "faultsim/fault_spec.hpp"

#include <charconv>
#include <sstream>

namespace rnb::faultsim {
namespace {

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

bool parse_f64(std::string_view token, double& out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

bool parse_u64(std::string_view token, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

/// One raw `key[@server]=value` assignment, in spec order. Applied in two
/// passes (all-server first, then per-server) so override semantics do not
/// depend on clause order within the string.
struct Assignment {
  std::string key;
  std::optional<ServerId> server;
  std::string value;
};

bool apply_to_clause(const Assignment& a, FaultClause& clause,
                     std::string* error) {
  if (a.key == "crash") {
    const std::size_t colon = a.value.find(':');
    std::uint64_t start = 0, end = 0;
    if (colon == std::string::npos ||
        !parse_u64(std::string_view(a.value).substr(0, colon), start) ||
        !parse_u64(std::string_view(a.value).substr(colon + 1), end) ||
        end <= start)
      return fail(error, "crash wants start:end with end > start, got '" +
                             a.value + "'");
    clause.crash.emplace_back(start, end);
    return true;
  }
  double v = 0.0;
  if (!parse_f64(a.value, v))
    return fail(error, "bad number '" + a.value + "' for " + a.key);
  if (a.key == "drop" || a.key == "trunc" || a.key == "partial") {
    if (v < 0.0 || v > 1.0)
      return fail(error, a.key + " wants a probability in [0,1]");
    (a.key == "drop" ? clause.drop
                     : a.key == "trunc" ? clause.trunc : clause.partial) = v;
    return true;
  }
  if (a.key == "latency" || a.key == "jitter") {
    if (v < 0.0) return fail(error, a.key + " must be >= 0");
    (a.key == "latency" ? clause.extra_latency : clause.jitter) = v;
    return true;
  }
  if (a.key == "slow") {
    if (v < 1.0) return fail(error, "slow wants a multiplier >= 1");
    clause.slow = v;
    return true;
  }
  return fail(error, "unknown fault key '" + a.key + "'");
}

}  // namespace

std::optional<FaultSpec> parse_fault_spec(std::string_view spec,
                                          std::string* error) {
  FaultSpec out;
  std::vector<Assignment> assignments;
  while (!spec.empty()) {
    const std::size_t semi = spec.find(';');
    std::string_view clause = spec.substr(0, semi);
    spec.remove_prefix(semi == std::string_view::npos ? spec.size()
                                                      : semi + 1);
    while (!clause.empty() && clause.front() == ' ') clause.remove_prefix(1);
    while (!clause.empty() && clause.back() == ' ') clause.remove_suffix(1);
    if (clause.empty()) continue;

    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos) {
      fail(error, "clause '" + std::string(clause) + "' has no '='");
      return std::nullopt;
    }
    Assignment a;
    std::string_view key = clause.substr(0, eq);
    a.value = std::string(clause.substr(eq + 1));
    const std::size_t at = key.find('@');
    if (at != std::string_view::npos) {
      std::uint64_t server = 0;
      if (!parse_u64(key.substr(at + 1), server)) {
        fail(error, "bad server index in '" + std::string(key) + "'");
        return std::nullopt;
      }
      a.server = static_cast<ServerId>(server);
      key = key.substr(0, at);
    }
    a.key = std::string(key);

    if (a.key == "seed") {
      if (a.server || !parse_u64(a.value, out.seed)) {
        fail(error, "bad seed clause");
        return std::nullopt;
      }
      continue;
    }
    if (a.key == "base" || a.key == "base_latency") {
      double base = 0.0;
      if (a.server || !parse_f64(a.value, base) || base <= 0.0) {
        fail(error, "base wants a positive latency in seconds");
        return std::nullopt;
      }
      out.base_latency = base;
      continue;
    }
    assignments.push_back(std::move(a));
  }

  // Pass 1: the all-server defaults.
  for (const Assignment& a : assignments)
    if (!a.server && !apply_to_clause(a, out.all, error)) return std::nullopt;
  // Pass 2: per-server overrides start from the finished defaults.
  for (const Assignment& a : assignments) {
    if (!a.server) continue;
    auto [it, inserted] = out.per_server.try_emplace(*a.server, out.all);
    if (!apply_to_clause(a, it->second, error)) return std::nullopt;
  }
  return out;
}

std::string to_spec_string(const FaultSpec& spec) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  const auto emit = [&os](const FaultClause& c, const std::string& at) {
    if (c.drop > 0.0) os << "drop" << at << "=" << c.drop << ";";
    if (c.trunc > 0.0) os << "trunc" << at << "=" << c.trunc << ";";
    if (c.partial > 0.0) os << "partial" << at << "=" << c.partial << ";";
    if (c.extra_latency > 0.0)
      os << "latency" << at << "=" << c.extra_latency << ";";
    if (c.jitter > 0.0) os << "jitter" << at << "=" << c.jitter << ";";
    if (c.slow != 1.0) os << "slow" << at << "=" << c.slow << ";";
    for (const auto& [start, end] : c.crash)
      os << "crash" << at << "=" << start << ":" << end << ";";
  };
  emit(spec.all, "");
  for (const auto& [s, clause] : spec.per_server)
    emit(clause, "@" + std::to_string(s));
  if (spec.base_latency != FaultSpec{}.base_latency)
    os << "base=" << spec.base_latency << ";";
  os << "seed=" << spec.seed;
  return os.str();
}

}  // namespace rnb::faultsim
