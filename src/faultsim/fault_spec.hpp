// Declarative fault schedules for deterministic failure injection.
//
// A FaultSpec describes, per server, what can go wrong on the wire and
// when: message drops, added latency, degraded ("slow") service, truncated
// or partial multi-get responses, and crash/restart epochs. Everything is a
// pure function of (spec seed, server, tick) — no wall clock, no global
// RNG — so an injected-fault run is exactly as reproducible as a clean one,
// and schedules can be queried from any thread in any order.
//
// Specs are written as a compact string so benches and simulators can take
// them on the command line (`--faults=SPEC`). Grammar: semicolon-separated
// clauses, each `key[@server]=value`; a clause without `@server` applies to
// every server, per-server clauses override it field-by-field.
//
//   drop=0.05              every server drops 5% of messages
//   drop@3=0.5             ... but server 3 drops half of them
//   latency=0.002          2 ms added to every roundtrip
//   jitter=0.001           plus uniform [0, 1ms) deterministic jitter
//   slow@2=4               server 2 serves 4x slower
//   trunc=0.01             1% of responses are cut mid-frame (malformed)
//   partial=0.02           2% of multi-get responses lose trailing values
//   crash@1=100:500        server 1 is down for ticks [100, 500)
//   seed=7                 decision-stream seed (default 1)
//
// Multiple crash clauses per server accumulate; `crash=A:B` without a
// server index crashes every server over that window (rarely useful, but
// consistent).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace rnb::faultsim {

/// A tick is the schedule's logical clock: the fault transport advances it
/// once per roundtrip; the simulators advance it once per request.
using Tick = std::uint64_t;

/// Fault behaviour of one server (or the all-server default).
struct FaultClause {
  /// Probability a message (request or response) is lost.
  double drop = 0.0;
  /// Probability a response frame is cut mid-frame (arrives malformed).
  double trunc = 0.0;
  /// Probability a multi-get response loses its trailing values while
  /// remaining a well-formed frame (the "short read" servers really send).
  double partial = 0.0;
  /// Fixed virtual seconds added to every roundtrip.
  double extra_latency = 0.0;
  /// Uniform [0, jitter) virtual seconds added on top, deterministically.
  double jitter = 0.0;
  /// Service-time multiplier; > 1 models a degraded ("limping") server.
  double slow = 1.0;
  /// Down windows [start, end) in ticks. A server inside a window accepts
  /// nothing; leaving the window restores it (crash/restart epochs).
  std::vector<std::pair<Tick, Tick>> crash;

  bool any() const noexcept {
    return drop > 0.0 || trunc > 0.0 || partial > 0.0 ||
           extra_latency > 0.0 || jitter > 0.0 || slow != 1.0 ||
           !crash.empty();
  }
};

struct FaultSpec {
  /// Default clause, applied to servers without an override.
  FaultClause all;
  /// Per-server overrides (already merged onto `all` by the parser).
  std::map<ServerId, FaultClause> per_server;
  /// Seed of the decision stream (independent of workload seeds).
  std::uint64_t seed = 1;
  /// Healthy per-roundtrip virtual service time, scaled by `slow`.
  double base_latency = 1e-3;

  /// True when any clause injects anything — the sims skip all fault
  /// machinery for an empty spec, keeping clean runs byte-identical to
  /// pre-faultsim builds.
  bool any() const noexcept {
    if (all.any()) return true;
    for (const auto& [s, c] : per_server)
      if (c.any()) return true;
    return false;
  }

  const FaultClause& clause(ServerId s) const noexcept {
    const auto it = per_server.find(s);
    return it == per_server.end() ? all : it->second;
  }
};

/// Parse a spec string (see grammar above). Returns nullopt and fills
/// `error` on malformed input. The empty string parses to an empty spec.
std::optional<FaultSpec> parse_fault_spec(std::string_view spec,
                                          std::string* error = nullptr);

/// Canonical spec string for a parsed spec (diagnostics and golden tests).
std::string to_spec_string(const FaultSpec& spec);

}  // namespace rnb::faultsim
