// Fault schedule adapter for the in-process simulators.
//
// The full simulator has no byte-level transport — RnbClient probes
// TwoClassStores directly — so faults enter through two hooks:
//
//   * advance_to(request_index, cluster): replays the schedule's crash
//     windows onto the cluster (fail_server/restore_server) with the
//     request index as the tick, BEFORE the request is planned — the
//     client then plans around down servers exactly as the paper's
//     degraded mode does.
//   * on_send(server): the per-send message-drop decision consulted by
//     RnbClient during execution (TransactionFaultInjector).
//
// Drop decisions are drawn at an internal send counter, which advances in
// the client's deterministic send order, so a (spec, workload, seeds)
// triple fixes the entire fault pattern. Each sweep cell owns its driver.
#pragma once

#include <cstdint>

#include "cluster/client.hpp"
#include "cluster/cluster.hpp"
#include "faultsim/fault_schedule.hpp"
#include "obs/health.hpp"
#include "obs/trace.hpp"

namespace rnb::faultsim {

class SimFaultDriver final : public TransactionFaultInjector {
 public:
  SimFaultDriver(const FaultSpec& spec, ServerId num_servers)
      : schedule_(spec, num_servers) {}

  /// Apply crash windows for the given request tick: fail servers entering
  /// a window, restore servers leaving one.
  void advance_to(Tick request_tick, RnbCluster& cluster) {
    tick_ = request_tick;
    for (ServerId s = 0; s < schedule_.num_servers(); ++s) {
      const bool want_down = schedule_.is_down(s, request_tick);
      if (want_down && !cluster.is_down(s)) {
        cluster.fail_server(s);
        if (obs::Tracer* t = obs::Tracer::current())
          t->instant("server_crash", "fault",
                     {{"server", static_cast<std::int64_t>(s)},
                      {"tick", static_cast<std::int64_t>(request_tick)}});
        // Persist the telemetry snapshot at the instant of the crash, so
        // the postmortem exists even if the run never reaches its orderly
        // dump (no-op when no flight recorder is installed).
        obs::FlightRecorder::dump_installed("server_crash");
      } else if (!want_down && cluster.is_down(s)) {
        cluster.restore_server(s);
        if (obs::Tracer* t = obs::Tracer::current())
          t->instant("server_restore", "fault",
                     {{"server", static_cast<std::int64_t>(s)},
                      {"tick", static_cast<std::int64_t>(request_tick)}});
      }
    }
  }

  bool on_send(ServerId s) override {
    const bool dropped = schedule_.drops(s, send_counter_++, 0);
    if (dropped) ++drops_;
    return !dropped;
  }

  const FaultSchedule& schedule() const noexcept { return schedule_; }
  Tick tick() const noexcept { return tick_; }
  std::uint64_t sends() const noexcept { return send_counter_; }
  std::uint64_t drops() const noexcept { return drops_; }

 private:
  FaultSchedule schedule_;
  Tick tick_ = 0;
  std::uint64_t send_counter_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace rnb::faultsim
