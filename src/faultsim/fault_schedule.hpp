// Compiled fault schedule: pure-function fault decisions.
//
// Every decision ("does server s drop the message at tick t, attempt a?")
// is derived by hashing (seed, decision kind, server, tick, attempt) into a
// uniform [0,1) draw — a counter-based RNG rather than a stateful stream.
// That makes decisions independent of query order and thread interleaving,
// which is what lets the parallel sweep driver and the golden determinism
// tests treat fault-injected runs exactly like clean ones. Retries see
// fresh draws (the attempt index is part of the counter), so a dropped
// message is not doomed to drop forever.
#pragma once

#include <cstdint>

#include "common/hash.hpp"
#include "common/types.hpp"
#include "faultsim/fault_spec.hpp"

namespace rnb::faultsim {

class FaultSchedule {
 public:
  FaultSchedule(FaultSpec spec, ServerId num_servers)
      : spec_(std::move(spec)), num_servers_(num_servers) {}

  const FaultSpec& spec() const noexcept { return spec_; }
  ServerId num_servers() const noexcept { return num_servers_; }
  const FaultClause& clause(ServerId s) const noexcept {
    return spec_.clause(s);
  }

  /// Crash windows: true while tick t lies in one of server s's down
  /// epochs. Scanning the (short) window list beats precomputing bitmaps
  /// for the sparse schedules specs actually describe.
  bool is_down(ServerId s, Tick t) const noexcept {
    for (const auto& [start, end] : clause(s).crash)
      if (t >= start && t < end) return true;
    return false;
  }

  bool drops(ServerId s, Tick t, std::uint32_t attempt) const noexcept {
    return draw(kDropSalt, s, t, attempt) < clause(s).drop;
  }

  bool truncates(ServerId s, Tick t) const noexcept {
    return draw(kTruncSalt, s, t, 0) < clause(s).trunc;
  }

  bool partials(ServerId s, Tick t) const noexcept {
    return draw(kPartialSalt, s, t, 0) < clause(s).partial;
  }

  /// Virtual roundtrip latency of a delivered attempt:
  /// base service scaled by the slow factor, plus fixed extra, plus
  /// deterministic jitter.
  double latency(ServerId s, Tick t, std::uint32_t attempt) const noexcept {
    const FaultClause& c = clause(s);
    double lat = spec_.base_latency * c.slow + c.extra_latency;
    if (c.jitter > 0.0) lat += c.jitter * draw(kJitterSalt, s, t, attempt);
    return lat;
  }

  /// Uniform [0,1) draw for decision `salt` at (server, tick, attempt);
  /// exposed for custom fault dimensions layered on the same stream.
  double draw(std::uint64_t salt, ServerId s, Tick t,
              std::uint32_t attempt) const noexcept {
    std::uint64_t x = hash_combine(spec_.seed, salt);
    x = hash_combine(x, s);
    x = hash_combine(x, t);
    x = hash_combine(x, attempt);
    return static_cast<double>(splitmix64(fmix64(x)) >> 11) * 0x1.0p-53;
  }

  static constexpr std::uint64_t kDropSalt = 0xd309;
  static constexpr std::uint64_t kTruncSalt = 0x7239c;
  static constexpr std::uint64_t kPartialSalt = 0x9a127;
  static constexpr std::uint64_t kJitterSalt = 0x217e6;

 private:
  FaultSpec spec_;
  ServerId num_servers_;
};

}  // namespace rnb::faultsim
