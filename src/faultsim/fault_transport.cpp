#include "faultsim/fault_transport.hpp"

#include "kv/protocol.hpp"
#include "obs/health.hpp"

namespace rnb::faultsim {
namespace {

/// Cut the response mid-frame at a schedule-determined offset, always
/// removing at least one byte so the frame cannot stay parseable.
void truncate_frame(const FaultSchedule& schedule, ServerId s, Tick t,
                    std::string& response) {
  if (response.empty()) return;
  const auto cut = static_cast<std::size_t>(
      schedule.draw(FaultSchedule::kTruncSalt + 1, s, t, 0) *
      static_cast<double>(response.size()));
  response.resize(cut >= response.size() ? response.size() - 1 : cut);
}

/// Strip trailing VALUE blocks from a well-formed multi-get response,
/// keeping at least the END terminator — a valid frame that silently under-
/// delivers. Non-value frames (STORED etc.) pass through untouched.
void shorten_values(const FaultSchedule& schedule, ServerId s, Tick t,
                    std::string& response) {
  auto values = kv::parse_values(response, /*with_versions=*/false);
  if (!values || values->empty()) return;
  const auto keep = static_cast<std::size_t>(
      schedule.draw(FaultSchedule::kPartialSalt + 1, s, t, 0) *
      static_cast<double>(values->size()));
  values->resize(keep);
  response.clear();
  kv::encode_values(*values, /*with_versions=*/false, response);
}

}  // namespace

kv::TransportResult FaultInjectingTransport::roundtrip(
    ServerId s, std::string_view request, std::string& response) {
  Tick t;
  {
    const std::lock_guard lock(mu_);
    t = tick_++;
    ++stats_.attempts;
  }
  const double latency = schedule_.latency(s, t, 0);

  if (schedule_.is_down(s, t)) {
    bool first_down;
    {
      const std::lock_guard lock(mu_);
      first_down = stats_.down_rejections == 0;
      ++stats_.down_rejections;
      response.clear();
    }
    // First crash this connection observes: persist the telemetry
    // snapshot so a postmortem exists even if the run dies inside the
    // fault window (no-op without an installed flight recorder).
    if (first_down) obs::FlightRecorder::dump_installed("server_crash");
    // A refused connection fails fast: no service time, just the wire.
    return {kv::TransportStatus::kServerDown, schedule_.spec().base_latency};
  }
  if (schedule_.drops(s, t, 0)) {
    const std::lock_guard lock(mu_);
    ++stats_.drops;
    response.clear();
    return {kv::TransportStatus::kDropped, latency};
  }

  const kv::TransportResult inner = inner_.roundtrip(s, request, response);
  if (!inner.ok()) return {inner.status, latency + inner.latency};

  if (schedule_.truncates(s, t)) {
    truncate_frame(schedule_, s, t, response);
    const std::lock_guard lock(mu_);
    ++stats_.truncations;
  } else if (schedule_.partials(s, t)) {
    const std::size_t before = response.size();
    shorten_values(schedule_, s, t, response);
    if (response.size() != before) {
      const std::lock_guard lock(mu_);
      ++stats_.partials;
    }
  }
  {
    const std::lock_guard lock(mu_);
    ++stats_.delivered;
  }
  return {kv::TransportStatus::kOk, latency + inner.latency};
}

}  // namespace rnb::faultsim
