// Parallel sweep driver for the full simulator.
//
// Figure-grade experiments are grids of independent simulator runs (memory
// x replication, window x policy, ...). Each cell owns its request source
// (sources are stateful) and its own seeds, so cells are embarrassingly
// parallel AND bit-reproducible regardless of worker count — the tests
// assert sweep results equal one-at-a-time results. On the paper's scale a
// grid finishes in seconds either way; on many-core machines the sweep
// makes the difference between interactive and coffee-break reruns.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/full_sim.hpp"

namespace rnb {

struct SweepCell {
  FullSimConfig config;
  /// Builds this cell's private request source. Called once, possibly on a
  /// worker thread; must not share mutable state with other cells.
  std::function<std::unique_ptr<RequestSource>()> make_source;
};

/// Run every cell (in parallel when hardware allows); results are indexed
/// like the input.
std::vector<FullSimResult> run_sweep(const std::vector<SweepCell>& cells);

}  // namespace rnb
