#include "sim/metrics_export.hpp"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <string>

namespace rnb {
namespace {

std::string cell_label(std::size_t index) {
  return "cell=\"" + std::to_string(index) + "\"";
}

}  // namespace

void fill_registry(obs::MetricsRegistry& registry,
                   const MetricsAccumulator& metrics,
                   const std::string& labels) {
  registry
      .counter("rnb_sim_requests_total", "Requests measured in the run",
               labels)
      .inc(metrics.requests());
  registry
      .gauge("rnb_sim_tpr", "Mean transactions per request (paper headline)",
             labels)
      .set(metrics.tpr());
  registry
      .gauge("rnb_sim_replica_misses_mean",
             "Mean assigned-replica misses per request", labels)
      .set(metrics.mean_misses());
  registry
      .gauge("rnb_sim_availability",
             "Fraction of requested items served by the cache tier", labels)
      .set(metrics.availability());
  registry
      .gauge("rnb_sim_deadline_miss_rate",
             "Fraction of requests that blew the wave budget", labels)
      .set(metrics.deadline_miss_rate());
  registry
      .gauge("rnb_sim_retries_mean", "Mean retried sends per request", labels)
      .set(metrics.mean_retries());
  registry
      .histogram("rnb_sim_tpr_distribution",
                 "Per-request transaction counts (HDR buckets)", labels)
      .merge(metrics.tpr_histogram());
  registry
      .histogram("rnb_sim_replica_misses",
                 "Per-request replica-miss counts (HDR buckets)", labels)
      .merge(metrics.miss_histogram());
  obs::Histogram& txn_keys = registry.histogram(
      "rnb_sim_transaction_keys",
      "Keys per transaction (assigned + hitchhikers)", labels);
  metrics.transaction_sizes().for_each(
      [&txn_keys](std::uint64_t keys, std::uint64_t count) {
        txn_keys.record(keys, count);
      });
}

void fill_registry(obs::MetricsRegistry& registry, const FullSimResult& result,
                   const std::string& labels) {
  fill_registry(registry, result.metrics, labels);
  registry.gauge("rnb_sim_servers", "Servers in the simulated fleet", labels)
      .set(static_cast<double>(result.num_servers));
  registry.gauge("rnb_sim_items", "Distinct items in the universe", labels)
      .set(static_cast<double>(result.num_items));
  registry
      .gauge("rnb_sim_resident_copies",
             "Copies resident across the fleet after the run", labels)
      .set(static_cast<double>(result.resident_copies));
  std::uint64_t busiest = 0;
  for (const std::uint64_t t : result.per_server_transactions)
    busiest = std::max(busiest, t);
  registry
      .gauge("rnb_sim_busiest_server_transactions",
             "Transactions seen by the most-loaded server", labels)
      .set(static_cast<double>(busiest));
}

void fill_registry(obs::MetricsRegistry& registry,
                   const LatencySimResult& result, const std::string& labels) {
  registry
      .counter("rnb_latency_requests_total", "Requests measured in the run",
               labels)
      .inc(result.latency_ns.count());
  // Recorded in nanoseconds; scale = 1e9 exposes seconds, the Prometheus
  // base unit for time.
  registry
      .histogram("rnb_latency_seconds", "Per-request latency", labels,
                 /*significant_bits=*/7, /*scale=*/1e9)
      .merge(result.latency_ns);
  registry
      .gauge("rnb_latency_mean_utilization", "Mean server busy fraction",
             labels)
      .set(result.mean_utilization);
  registry
      .gauge("rnb_latency_max_utilization", "Busiest server's busy fraction",
             labels)
      .set(result.max_utilization);
  registry
      .gauge("rnb_latency_tpr", "Mean transactions per request", labels)
      .set(result.tpr);
}

void fill_registry(obs::MetricsRegistry& registry,
                   std::span<const FullSimResult> results) {
  for (std::size_t i = 0; i < results.size(); ++i)
    fill_registry(registry, results[i], cell_label(i));
}

void write_prometheus(std::ostream& os, const FullSimResult& result) {
  obs::MetricsRegistry registry;
  fill_registry(registry, result);
  registry.write_prometheus(os);
}

void write_prometheus(std::ostream& os, const LatencySimResult& result) {
  obs::MetricsRegistry registry;
  fill_registry(registry, result);
  registry.write_prometheus(os);
}

}  // namespace rnb
