#include "sim/sweep.hpp"

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace rnb {

std::vector<FullSimResult> run_sweep(const std::vector<SweepCell>& cells) {
  std::vector<FullSimResult> results(cells.size());
  parallel_for(cells.size(), [&](std::size_t i) {
    RNB_REQUIRE(cells[i].make_source != nullptr);
    const std::unique_ptr<RequestSource> source = cells[i].make_source();
    results[i] = run_full_sim(*source, cells[i].config);
  });
  return results;
}

}  // namespace rnb
