// Queueing latency simulator — the paper's stated future work ("measuring
// the impact of RnB on the latency and throughput metrics of real and
// simulated systems", Section V-B).
//
// Model: Poisson request arrivals at rate lambda; each request is planned
// by the real RnB client (unlimited-memory cluster, so plans are exact and
// the queueing effect is isolated from miss effects); each planned
// transaction is dispatched at arrival time to its server, which is a
// single-worker FIFO queue with service time from the micro-benchmark cost
// model (t_transaction + keys * t_item). Request latency = network RTT +
// (latest transaction completion - arrival): the client issues all
// transactions of a multi-get in parallel and waits for the slowest — the
// fan-out tail that makes the multi-get hole a latency problem too.
//
// With arrival-time dispatch and FIFO servers, completions can be computed
// exactly in arrival order without an event heap: each server keeps a
// next-free time.
#pragma once

#include <cstdint>

#include "cluster/cluster.hpp"
#include "cluster/policies.hpp"
#include "common/stats.hpp"
#include "faultsim/fault_spec.hpp"
#include "obs/hdr_histogram.hpp"
#include "sim/calibration.hpp"
#include "workload/request_source.hpp"

namespace rnb {

struct LatencySimConfig {
  ClusterConfig cluster;
  ClientPolicy policy;
  /// Offered load in requests per second.
  double arrival_rate = 1000.0;
  std::uint64_t requests = 20000;
  /// Fraction of initial requests excluded from latency statistics while
  /// queues reach steady state.
  double warmup_fraction = 0.1;
  ThroughputModel model = ThroughputModel::paper_default();
  /// Fixed one-way network + client overhead added once per request.
  double network_rtt = 200e-6;
  std::uint64_t seed = 1;

  /// Deterministic fault schedule (ticks are request indices). In this
  /// model: crash windows remove servers from planning, `slow` scales a
  /// server's service time, `extra_latency`/`jitter` stretch a
  /// transaction's network path, and `drop` costs one retransmit timeout
  /// (policy.max_attempts bounds the re-sends) before the transaction
  /// queues. Empty spec == the clean model, bit for bit.
  faultsim::FaultSpec faults;
  /// Client-side retransmit timer charged per dropped send; the paper-
  /// default transaction cost is ~1ms, so a few RTTs of timeout dominate
  /// the tail exactly as real timeout-based recovery does.
  double retransmit_timeout = 2e-3;
};

struct LatencySimResult {
  RunningStat latency;  // seconds, per measured request (exact mean/stddev)
  /// Latency distribution in nanoseconds (HDR buckets, <0.8% relative
  /// error) — mergeable and O(buckets) instead of O(requests).
  obs::Histogram latency_ns;
  /// Mean busy fraction of the busiest server over the simulated horizon.
  double max_utilization = 0.0;
  /// Mean busy fraction across servers.
  double mean_utilization = 0.0;
  /// Mean transactions per request observed (sanity hook to the TPR runs).
  double tpr = 0.0;

  /// Quantiles in seconds (histogram upper bounds).
  double quantile(double q) const {
    return static_cast<double>(latency_ns.quantile(q)) * 1e-9;
  }
  double p50() const { return quantile(0.5); }
  double p99() const { return quantile(0.99); }
};

/// Run the simulation; the cluster is built to source.universe_size() items.
LatencySimResult run_latency_sim(RequestSource& source,
                                 const LatencySimConfig& config);

}  // namespace rnb
