// Throughput calibration — paper Appendix A.
//
// The simulators count transactions and items; turning those into requests
// per second needs a cost model of a real server. The paper micro-benchmarks
// memcached with memaslap and finds transaction cost affine in the key
// count:  time(k) = t_transaction + k * t_item  with t_transaction >> t_item
// (items/s grows near-linearly with items per transaction — Fig. 13).
//
// ThroughputModel carries that affine cost. Defaults approximate the
// paper's testbed (a Core i7-930 handling ~1e5 single-get transactions/s);
// fit() re-derives the two constants from micro-benchmark samples, and our
// fig13 bench measures the in-tree mini-kv to produce such samples — the
// substitution documented in DESIGN.md Section 4.
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.hpp"

namespace rnb {

/// One micro-benchmark observation: transactions of `items_per_txn` keys
/// were served at `transactions_per_second`.
struct MicrobenchSample {
  double items_per_txn = 1.0;
  double transactions_per_second = 0.0;
};

class ThroughputModel {
 public:
  /// Affine cost model: seconds(k) = t_transaction + k * t_item.
  ThroughputModel(double t_transaction_s, double t_item_s);

  /// Paper-testbed-like constants: 100k single-key transactions/s with a
  /// ~30:1 transaction-to-item cost ratio.
  static ThroughputModel paper_default();

  /// Least-squares fit of the affine model to micro-benchmark samples
  /// (each sample contributes seconds-per-transaction = 1/tps at its k).
  static ThroughputModel fit(const std::vector<MicrobenchSample>& samples);

  double t_transaction() const noexcept { return t_transaction_; }
  double t_item() const noexcept { return t_item_; }

  /// Server-seconds to process one transaction of `keys` keys.
  double transaction_seconds(double keys) const noexcept {
    return t_transaction_ + keys * t_item_;
  }

  /// Transactions/s a single server sustains at `keys` keys per transaction.
  double transactions_per_second(double keys) const noexcept {
    return 1.0 / transaction_seconds(keys);
  }

  /// Items/s a single server sustains at `keys` keys per transaction (the
  /// y-axis of Figs. 13-14).
  double items_per_second(double keys) const noexcept {
    return keys / transaction_seconds(keys);
  }

  /// Total server-seconds to serve every transaction in a size histogram.
  double total_seconds(const Histogram& txn_sizes) const;

  /// Maximum sustainable request rate of an N-server fleet that observed
  /// `txn_sizes` while serving `requests` requests, assuming work spreads
  /// evenly (placement is uniform, so it does):
  ///   rate = requests * N / total_seconds.
  double system_requests_per_second(const Histogram& txn_sizes,
                                    std::uint64_t requests,
                                    std::uint32_t num_servers) const;

 private:
  double t_transaction_;
  double t_item_;
};

}  // namespace rnb
