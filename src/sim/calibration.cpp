#include "sim/calibration.hpp"

#include "common/error.hpp"

namespace rnb {

ThroughputModel::ThroughputModel(double t_transaction_s, double t_item_s)
    : t_transaction_(t_transaction_s), t_item_(t_item_s) {
  RNB_REQUIRE(t_transaction_s > 0.0);
  RNB_REQUIRE(t_item_s >= 0.0);
}

ThroughputModel ThroughputModel::paper_default() {
  // ~1e5 single-key transactions/s; per-item cost ~1/30 of the fixed cost.
  // These reproduce Fig. 13's shape: items/s near-linear in transaction
  // size until k approaches t_transaction/t_item, then flattening.
  return ThroughputModel(10e-6, 0.33e-6);
}

ThroughputModel ThroughputModel::fit(
    const std::vector<MicrobenchSample>& samples) {
  RNB_REQUIRE(samples.size() >= 2);
  // Ordinary least squares on y = a + b*k with y = seconds/transaction.
  double sk = 0, sy = 0, skk = 0, sky = 0;
  const double n = static_cast<double>(samples.size());
  for (const auto& s : samples) {
    RNB_REQUIRE(s.transactions_per_second > 0.0);
    const double y = 1.0 / s.transactions_per_second;
    sk += s.items_per_txn;
    sy += y;
    skk += s.items_per_txn * s.items_per_txn;
    sky += s.items_per_txn * y;
  }
  const double denom = n * skk - sk * sk;
  RNB_REQUIRE(denom > 0.0 && "samples must span at least two sizes");
  double b = (n * sky - sk * sy) / denom;
  double a = (sy - b * sk) / n;
  // Physical floor: measured noise can drive either constant negative on
  // nearly-flat data; clamp to a tiny positive epsilon.
  if (a <= 0.0) a = 1e-9;
  if (b < 0.0) b = 0.0;
  return ThroughputModel(a, b);
}

double ThroughputModel::total_seconds(const Histogram& txn_sizes) const {
  double total = 0.0;
  txn_sizes.for_each([&](std::uint64_t keys, std::uint64_t count) {
    total += static_cast<double>(count) *
             transaction_seconds(static_cast<double>(keys));
  });
  return total;
}

double ThroughputModel::system_requests_per_second(
    const Histogram& txn_sizes, std::uint64_t requests,
    std::uint32_t num_servers) const {
  RNB_REQUIRE(num_servers >= 1);
  const double work = total_seconds(txn_sizes);
  if (work <= 0.0) return 0.0;
  return static_cast<double>(requests) * static_cast<double>(num_servers) /
         work;
}

}  // namespace rnb
