// Prometheus exposition for simulator results.
//
// The obs layer deliberately knows nothing about simulators (it sits just
// above common/); this adapter lives in sim/ and maps MetricsAccumulator /
// FullSimResult / LatencySimResult onto an obs::MetricsRegistry. Drivers
// (rnbsim --metrics=FILE, sweep tools) call fill_registry with a label body
// per run — e.g. `cell="3"` — so one exposition file can carry a whole
// grid, then write_prometheus once.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "cluster/metrics.hpp"
#include "obs/metrics.hpp"
#include "sim/full_sim.hpp"
#include "sim/latency_sim.hpp"

namespace rnb {

/// One series per headline metric of the accumulator, all under `labels`
/// (raw label body without braces; empty = unlabelled).
void fill_registry(obs::MetricsRegistry& registry,
                   const MetricsAccumulator& metrics,
                   const std::string& labels = "");

/// Accumulator series plus the cluster-shape gauges a full-sim run carries
/// (servers, items, resident copies, per-server transaction imbalance).
void fill_registry(obs::MetricsRegistry& registry, const FullSimResult& result,
                   const std::string& labels = "");

/// Latency-sim series: the nanosecond latency histogram (exposed in
/// seconds), utilization gauges, and the TPR cross-check.
void fill_registry(obs::MetricsRegistry& registry,
                   const LatencySimResult& result,
                   const std::string& labels = "");

/// Sweep results as one registry, labelled cell="0", cell="1", ...
void fill_registry(obs::MetricsRegistry& registry,
                   std::span<const FullSimResult> results);

/// Convenience: fill a fresh registry from one result and write it.
void write_prometheus(std::ostream& os, const FullSimResult& result);
void write_prometheus(std::ostream& os, const LatencySimResult& result);

}  // namespace rnb
