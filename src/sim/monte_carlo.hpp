// Simplified Monte-Carlo simulator — paper Section III-F.
//
// "It assumed that the servers have enough memory to completely avoid
// misses, and that the set of items in each request is random and
// independent of the previous request." Under those assumptions no server
// state is needed at all: each trial draws M random items, computes their
// replica locations, runs the (partial) greedy cover, and records the
// transaction count. This drives Figs. 11-12 and doubles as a cross-check
// of the closed-form W(N, M) model (replication 1, fraction 1.0).
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "hashring/placement.hpp"

namespace rnb {

struct MonteCarloConfig {
  ServerId num_servers = 16;
  std::uint32_t replication = 1;
  std::uint32_t request_size = 100;
  /// LIMIT fraction: fetch at least ceil(fraction * request_size) items.
  double fetch_fraction = 1.0;
  /// Items are drawn from this universe; must comfortably exceed
  /// request_size so draws behave like the analytical model's independent
  /// placements.
  std::uint64_t universe = 1u << 20;
  std::uint64_t trials = 2000;
  PlacementScheme placement = PlacementScheme::kRangedConsistentHash;
  std::uint64_t seed = 1;
};

struct MonteCarloResult {
  RunningStat transactions;   // per trial
  RunningStat items_fetched;  // per trial

  double tpr() const noexcept { return transactions.mean(); }
};

MonteCarloResult run_monte_carlo(const MonteCarloConfig& config);

}  // namespace rnb
