#include "sim/full_sim.hpp"

#include <optional>

#include "adaptive/controller.hpp"

namespace rnb {

FullSimResult run_full_sim(RequestSource& source,
                           const FullSimConfig& config) {
  RnbCluster cluster(config.cluster, source.universe_size());
  RnbClient client(cluster, config.policy, config.client_seed);

  std::optional<AdaptiveController> adaptive;
  if (config.adaptive) {
    adaptive.emplace(cluster, config.adaptive_config);
    client.set_observer(&*adaptive);
  }

  std::vector<ItemId> request;
  for (std::uint64_t i = 0; i < config.warmup_requests; ++i) {
    source.next(request);
    client.execute(request, nullptr);
  }

  FullSimResult result;
  for (std::uint64_t i = 0; i < config.measure_requests; ++i) {
    source.next(request);
    client.execute(request, &result.metrics);
  }
  result.resident_copies = cluster.resident_copies();
  result.num_items = cluster.num_items();
  result.num_servers = cluster.num_servers();
  result.per_server_transactions = cluster.per_server_transactions();
  if (adaptive) {
    result.rebalance = adaptive->stats();
    result.overlay_extra_replicas = adaptive->overlay().extra_replicas();
  }
  return result;
}

}  // namespace rnb
