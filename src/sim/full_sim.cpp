#include "sim/full_sim.hpp"

#include <optional>

#include "adaptive/controller.hpp"
#include "faultsim/sim_fault_driver.hpp"
#include "obs/trace.hpp"

namespace rnb {

FullSimResult run_full_sim(RequestSource& source,
                           const FullSimConfig& config) {
  RnbCluster cluster(config.cluster, source.universe_size());
  RnbClient client(cluster, config.policy, config.client_seed);

  std::optional<AdaptiveController> adaptive;
  if (config.adaptive) {
    adaptive.emplace(cluster, config.adaptive_config);
    client.set_observer(&*adaptive);
  }

  // Fault injection: the request index (warmup included) is the schedule
  // tick, so crash windows land at the same workload position every run.
  std::optional<faultsim::SimFaultDriver> faults;
  if (config.faults.any()) {
    faults.emplace(config.faults, cluster.num_servers());
    client.set_fault_injector(&*faults);
  }

  // One virtual-time slot (1ms) per request: spans of request i land at
  // [i*1000, ...) microseconds, so traces group visibly by request.
  obs::Tracer* const tracer = obs::Tracer::current();
  std::vector<ItemId> request;
  for (std::uint64_t i = 0; i < config.warmup_requests; ++i) {
    if (tracer != nullptr) tracer->set_virtual_time(i * 1000);
    source.next(request);
    if (faults) faults->advance_to(i, cluster);
    client.execute(request, nullptr);
  }

  FullSimResult result;
  for (std::uint64_t i = 0; i < config.measure_requests; ++i) {
    if (tracer != nullptr)
      tracer->set_virtual_time((config.warmup_requests + i) * 1000);
    source.next(request);
    if (faults) faults->advance_to(config.warmup_requests + i, cluster);
    client.execute(request, &result.metrics);
  }
  // Schedules ending inside a crash window would otherwise leave servers
  // down for whoever inspects the cluster after the run.
  if (faults) faults->advance_to(~faultsim::Tick{0}, cluster);
  result.resident_copies = cluster.resident_copies();
  result.num_items = cluster.num_items();
  result.num_servers = cluster.num_servers();
  result.per_server_transactions = cluster.per_server_transactions();
  if (adaptive) {
    result.rebalance = adaptive->stats();
    result.overlay_extra_replicas = adaptive->overlay().extra_replicas();
  }
  return result;
}

}  // namespace rnb
