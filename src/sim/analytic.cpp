#include "sim/analytic.hpp"

#include <cmath>

#include "common/error.hpp"

namespace rnb {

double server_contact_probability(std::uint64_t num_servers,
                                  std::uint64_t request_size) {
  RNB_REQUIRE(num_servers >= 1);
  const double n = static_cast<double>(num_servers);
  const double m = static_cast<double>(request_size);
  // expm1/log1p keep precision when 1/N is tiny and M is small.
  return -std::expm1(m * std::log1p(-1.0 / n));
}

double expected_tpr(std::uint64_t num_servers, std::uint64_t request_size) {
  return static_cast<double>(num_servers) *
         server_contact_probability(num_servers, request_size);
}

double tprps_scaling_factor(std::uint64_t num_servers,
                            std::uint64_t request_size, double growth) {
  RNB_REQUIRE(growth > 0.0);
  const auto grown = static_cast<std::uint64_t>(
      growth * static_cast<double>(num_servers) + 0.5);
  RNB_REQUIRE(grown >= 1);
  return server_contact_probability(num_servers, request_size) /
         server_contact_probability(grown, request_size);
}

double relative_throughput_vs_single(std::uint64_t num_servers,
                                     std::uint64_t request_size) {
  return 1.0 / server_contact_probability(num_servers, request_size);
}

}  // namespace rnb
