#include "sim/latency_sim.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include <optional>

#include "cluster/client.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "faultsim/sim_fault_driver.hpp"
#include "obs/trace.hpp"

namespace rnb {

LatencySimResult run_latency_sim(RequestSource& source,
                                 const LatencySimConfig& config) {
  RNB_REQUIRE(config.arrival_rate > 0.0);
  RNB_REQUIRE(config.requests > 0);
  RNB_REQUIRE(config.warmup_fraction >= 0.0 && config.warmup_fraction < 1.0);

  // Unlimited memory isolates queueing from cache-miss effects; the plan's
  // transactions are exactly what the servers will serve.
  ClusterConfig cluster_cfg = config.cluster;
  cluster_cfg.unlimited_memory = true;
  RnbCluster cluster(cluster_cfg, source.universe_size());
  RnbClient client(cluster, config.policy, config.seed ^ 0x51a7e11ULL);

  Xoshiro256 rng(config.seed);
  const ServerId n = cluster.num_servers();
  std::optional<faultsim::SimFaultDriver> faults;
  if (config.faults.any()) faults.emplace(config.faults, n);
  std::vector<double> server_free(n, 0.0);
  std::vector<double> server_busy(n, 0.0);
  std::vector<std::size_t> keys_per_server(n, 0);

  LatencySimResult result;
  const auto warmup =
      static_cast<std::uint64_t>(config.warmup_fraction *
                                 static_cast<double>(config.requests));
  double now = 0.0;
  double measured_tpr = 0.0;
  std::uint64_t measured = 0;
  std::vector<ItemId> request;

  obs::Tracer* const tracer = obs::Tracer::current();
  for (std::uint64_t r = 0; r < config.requests; ++r) {
    // Poisson arrivals: exponential inter-arrival gaps.
    now += -std::log1p(-rng.uniform01()) / config.arrival_rate;
    // Virtual trace time follows the simulated arrival clock (micros).
    if (tracer != nullptr)
      tracer->set_virtual_time(static_cast<std::uint64_t>(now * 1e6));
    if (faults) faults->advance_to(r, cluster);
    source.next(request);
    const RequestPlan plan = client.plan(request);

    // Count keys per planned transaction.
    std::fill(keys_per_server.begin(), keys_per_server.end(), 0);
    for (const ServerId s : plan.assignment)
      if (s != kInvalidServer) ++keys_per_server[s];

    double done = now;
    for (const ServerId s : plan.servers) {
      double service = config.model.transaction_seconds(
          static_cast<double>(keys_per_server[s]));
      double dispatch = now;
      double net_extra = 0.0;
      if (faults) {
        const faultsim::FaultSchedule& sched = faults->schedule();
        const faultsim::FaultClause& c = sched.clause(s);
        // Dropped sends burn retransmit timeouts before the transaction
        // reaches the server queue; a send that exhausts every attempt is
        // charged the full timeout budget and never occupies the server.
        std::uint32_t attempt = 0;
        const std::uint32_t max_attempts =
            std::max(1u, config.policy.max_attempts);
        while (attempt < max_attempts && sched.drops(s, r, attempt)) {
          dispatch += config.retransmit_timeout;
          ++attempt;
        }
        if (attempt == max_attempts) {
          done = std::max(done, dispatch);
          continue;
        }
        service *= c.slow;
        net_extra = c.extra_latency;
        if (c.jitter > 0.0)
          net_extra += c.jitter *
                       sched.draw(faultsim::FaultSchedule::kJitterSalt, s, r,
                                  attempt);
      }
      const double start = std::max(server_free[s], dispatch);
      server_free[s] = start + service;
      server_busy[s] += service;
      done = std::max(done, server_free[s] + net_extra);
    }
    if (r >= warmup) {
      const double latency = (done - now) + config.network_rtt;
      result.latency.add(latency);
      result.latency_ns.record(
          static_cast<std::uint64_t>(std::max(latency, 0.0) * 1e9));
      measured_tpr += static_cast<double>(plan.servers.size());
      ++measured;
    }
  }

  const double horizon = std::max(now, 1e-12);
  for (ServerId s = 0; s < n; ++s) {
    const double utilization = server_busy[s] / horizon;
    result.mean_utilization += utilization / static_cast<double>(n);
    result.max_utilization = std::max(result.max_utilization, utilization);
  }
  result.tpr = measured == 0 ? 0.0
                             : measured_tpr / static_cast<double>(measured);
  return result;
}

}  // namespace rnb
