// Closed-form multi-get-hole model — paper Section II-A.
//
// Items placed uniformly at random over N servers; a request for M distinct
// items contacts a given server iff its "urn" is non-empty after throwing M
// balls into N urns:  W(N, M) = 1 - (1 - 1/N)^M.  All of Fig. 2 and the
// ideal-scaling line of Fig. 3 follow from this one function.
#pragma once

#include <cstdint>

namespace rnb {

/// Probability a specific server is contacted: W(N, M) = 1 - (1 - 1/N)^M.
/// This equals the TPRPS (transactions per request per server).
double server_contact_probability(std::uint64_t num_servers,
                                  std::uint64_t request_size);

/// Expected transactions per request: N * W(N, M).
double expected_tpr(std::uint64_t num_servers, std::uint64_t request_size);

/// TPRPS scaling factor when growing from N to k*N servers:
/// W(N, M) / W(kN, M). 2.0 == ideal doubling; 1.0 == no benefit.
double tprps_scaling_factor(std::uint64_t num_servers,
                            std::uint64_t request_size, double growth = 2.0);

/// Relative system throughput of an N-server system versus a single server
/// when servers are bound purely by transactions per second: the fleet
/// processes N/c transactions per second and each request consumes
/// TPR(N, M) of them, so throughput(N)/throughput(1) = 1 / W(N, M).
/// (Ideal linear scaling would be N — Fig. 3's dashed line.)
double relative_throughput_vs_single(std::uint64_t num_servers,
                                     std::uint64_t request_size);

}  // namespace rnb
