// Full memcached-system simulator — paper Section III-B.
//
// Wires a request source, an RnbCluster, and an RnbClient together and runs
// warmup + measurement phases. "Since our emphasis is on the multi-get
// hole, we focused on the total amount of server work per request ...
// queuing is not relevant and requests were simulated individually" — so
// the simulator is a sequential request loop, and all its outputs are
// per-request statistics plus the transaction-size histogram that the
// calibration model converts into throughput.
//
// Adaptive mode (config.adaptive = true) goes beyond the paper: an
// AdaptiveController rides the client's request stream, tracks item
// popularity in streaming sketches, and rebalances per-item replica
// degrees every epoch under a replica-memory budget. Warmup requests feed
// the sketches too — that is how the system reaches its adapted steady
// state before measurement begins.
#pragma once

#include <cstdint>
#include <vector>

#include "adaptive/policy.hpp"
#include "adaptive/rebalancer.hpp"
#include "cluster/client.hpp"
#include "cluster/cluster.hpp"
#include "cluster/metrics.hpp"
#include "cluster/policies.hpp"
#include "faultsim/fault_spec.hpp"
#include "workload/request_source.hpp"

namespace rnb {

struct FullSimConfig {
  ClusterConfig cluster;
  ClientPolicy policy;
  /// Requests run before measurement to warm replica caches (and, in
  /// adaptive mode, the popularity sketches). Irrelevant (and skippable)
  /// in static unlimited-memory mode, where caches never change.
  std::uint64_t warmup_requests = 0;
  std::uint64_t measure_requests = 10000;
  std::uint64_t client_seed = 0x9e3779b9u;

  /// Enable the adaptive-replication subsystem; cluster.logical_replicas
  /// acts as the base degree r_min.
  bool adaptive = false;
  AdaptiveConfig adaptive_config;

  /// Deterministic fault schedule (see faultsim/fault_spec.hpp for the
  /// spec grammar). Ticks are request indices over warmup + measurement.
  /// An empty spec attaches no injector and changes nothing.
  faultsim::FaultSpec faults;
};

struct FullSimResult {
  MetricsAccumulator metrics;
  /// Copies resident across the fleet after the run (overbooking probe).
  std::uint64_t resident_copies = 0;
  std::uint64_t num_items = 0;
  std::uint32_t num_servers = 0;
  /// Transactions each server saw over the whole run (warmup + measure,
  /// including adaptive migrations) — the load-imbalance probe.
  std::vector<std::uint64_t> per_server_transactions;
  /// Adaptive-mode accounting; zero-valued when adaptive is off.
  RebalanceStats rebalance;
  /// Extra logical replicas the overlay held when the run ended.
  std::uint64_t overlay_extra_replicas = 0;
};

/// Run the simulator: builds a cluster sized to source.universe_size().
FullSimResult run_full_sim(RequestSource& source, const FullSimConfig& config);

}  // namespace rnb
