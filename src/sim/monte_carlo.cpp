#include "sim/monte_carlo.hpp"

#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "setcover/cover.hpp"
#include "setcover/greedy.hpp"

namespace rnb {

MonteCarloResult run_monte_carlo(const MonteCarloConfig& config) {
  RNB_REQUIRE(config.request_size >= 1);
  RNB_REQUIRE(config.universe >= config.request_size);
  RNB_REQUIRE(config.fetch_fraction > 0.0 && config.fetch_fraction <= 1.0);

  const auto placement =
      make_placement(config.placement, config.num_servers, config.replication,
                     config.seed);
  Xoshiro256 rng(config.seed ^ 0xc0ffee123456789ULL);

  MonteCarloResult result;
  std::unordered_set<ItemId> drawn;
  CoverInstance instance;
  instance.candidates.resize(config.request_size);
  for (auto& c : instance.candidates) c.resize(config.replication);
  const std::size_t target = CoverInstance::target_from_fraction(
      config.request_size, config.fetch_fraction);

  for (std::uint64_t t = 0; t < config.trials; ++t) {
    drawn.clear();
    std::size_t filled = 0;
    while (filled < config.request_size) {
      const ItemId item = rng.below(config.universe);
      if (!drawn.insert(item).second) continue;
      placement->replicas(
          item, std::span<ServerId>(instance.candidates[filled]));
      ++filled;
    }
    const CoverResult cover = greedy_cover_partial(instance, target);
    result.transactions.add(static_cast<double>(cover.transactions()));
    result.items_fetched.add(static_cast<double>(cover.covered_items()));
  }
  return result;
}

}  // namespace rnb
