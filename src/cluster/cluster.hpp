// A simulated memcached fleet under RnB placement.
//
// The cluster owns N TwoClassStore servers and a PlacementPolicy. populate()
// pins each item's distinguished copy on its replica-0 server (that class is
// sized to exactly one copy of the data, the paper's "same amount of memory
// that the original system had"); the replica class per server gets
//     (relative_memory - 1.0) * num_items / num_servers
// slots, so the Fig. 8 memory axis maps 1:1 onto ClusterConfig. Unlimited
// mode (Fig. 6) instead pre-installs every logical replica and never evicts.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/error.hpp"

#include "cache/two_class_store.hpp"
#include "cluster/policies.hpp"
#include "hashring/placement.hpp"

namespace rnb {

struct ClusterConfig {
  ServerId num_servers = 16;
  /// Declared ("logical") replicas per item, including the distinguished
  /// copy. Under limited memory this may exceed what fits — overbooking.
  std::uint32_t logical_replicas = 1;
  PlacementScheme placement = PlacementScheme::kRangedConsistentHash;
  std::uint64_t seed = 1;

  /// true: every logical replica is always resident (Fig. 6 regime).
  /// false: replica class is a bounded cache (Fig. 8-10 regime).
  bool unlimited_memory = true;
  /// Total memory in units of "one copy of the data"; >= 1.0. Only
  /// meaningful when unlimited_memory is false.
  double relative_memory = 1.0;
  ReplicaEvictionPolicy eviction = ReplicaEvictionPolicy::kLru;
};

class RnbCluster {
 public:
  /// Build the fleet and install `num_items` items with ids [0, num_items):
  /// distinguished copies pinned; replica copies pre-installed only in
  /// unlimited mode.
  RnbCluster(const ClusterConfig& config, std::uint64_t num_items);

  const ClusterConfig& config() const noexcept { return config_; }
  std::uint64_t num_items() const noexcept { return num_items_; }
  ServerId num_servers() const noexcept { return config_.num_servers; }
  std::uint32_t replication() const noexcept {
    return placement_->replication();
  }

  const PlacementPolicy& placement() const noexcept { return *placement_; }

  TwoClassStore& server(ServerId s) { return servers_[s]; }
  const TwoClassStore& server(ServerId s) const { return servers_[s]; }

  /// Replica servers of `item`, replica order (index 0 = distinguished).
  /// Always the BASE placement, ignoring any attached locator.
  void replicas_of(ItemId item, std::span<ServerId> out) const {
    placement_->replicas(item, out);
  }

  /// Attach a variable-degree replica locator (the adaptive-replication
  /// overlay). Non-owning and nullable; nullptr restores base placement.
  /// The locator's rank-0 server must match the base placement's — pinned
  /// distinguished copies never move.
  void attach_locator(const ReplicaLocator* locator) noexcept {
    locator_ = locator;
  }
  const ReplicaLocator* locator() const noexcept { return locator_; }

  /// Replica servers of `item` through the attached locator when present
  /// (per-item degree), else the base placement. `out` is resized.
  void locations_of(ItemId item, std::vector<ServerId>& out) const;

  /// Transaction accounting: the client notes every server a round-1,
  /// round-2, write, or migration transaction touches, so benches can
  /// report per-server load imbalance without replanning requests.
  void note_transaction(ServerId s) {
    RNB_REQUIRE(s < txn_counts_.size());
    ++txn_counts_[s];
  }
  const std::vector<std::uint64_t>& per_server_transactions() const noexcept {
    return txn_counts_;
  }

  /// Per-server replica-class slot budget implied by the config.
  std::size_t replica_slots_per_server() const noexcept {
    return replica_slots_per_server_;
  }

  /// Total pinned + cached replica copies across the fleet (memory probe
  /// for the overbooking experiments).
  std::uint64_t resident_copies() const;

  /// Failure injection: a down server accepts no transactions; the client
  /// plans around it using the surviving replicas. Replication bought for
  /// RnB's bundling doubles as fault tolerance — exactly the "replication
  /// is often done anyhow" synergy the paper leans on (Section V-B).
  void fail_server(ServerId s);
  void restore_server(ServerId s);
  bool is_down(ServerId s) const {
    RNB_REQUIRE(s < down_.size());
    return down_[s];
  }
  std::uint32_t down_count() const noexcept { return down_count_; }

 private:
  ClusterConfig config_;
  std::uint64_t num_items_;
  std::unique_ptr<PlacementPolicy> placement_;
  const ReplicaLocator* locator_ = nullptr;
  std::size_t replica_slots_per_server_ = 0;
  std::vector<TwoClassStore> servers_;
  std::vector<bool> down_;
  std::vector<std::uint64_t> txn_counts_;
  std::uint32_t down_count_ = 0;
};

}  // namespace rnb
