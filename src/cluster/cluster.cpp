#include "cluster/cluster.hpp"

#include <limits>

#include "common/error.hpp"

namespace rnb {

RnbCluster::RnbCluster(const ClusterConfig& config, std::uint64_t num_items)
    : config_(config),
      num_items_(num_items),
      placement_(make_placement(config.placement, config.num_servers,
                                config.logical_replicas, config.seed)) {
  RNB_REQUIRE(config.num_servers > 0);
  RNB_REQUIRE(config.logical_replicas >= 1);
  RNB_REQUIRE(config.logical_replicas <= config.num_servers);

  if (config_.unlimited_memory) {
    // Large enough that no insert ever evicts.
    replica_slots_per_server_ = std::numeric_limits<std::size_t>::max() / 2;
  } else {
    RNB_REQUIRE(config_.relative_memory >= 1.0);
    const double extra =
        (config_.relative_memory - 1.0) * static_cast<double>(num_items);
    replica_slots_per_server_ = static_cast<std::size_t>(
        extra / static_cast<double>(config_.num_servers));
  }

  servers_.reserve(config_.num_servers);
  for (ServerId s = 0; s < config_.num_servers; ++s)
    servers_.emplace_back(replica_slots_per_server_, config_.eviction);
  down_.assign(config_.num_servers, false);
  txn_counts_.assign(config_.num_servers, 0);

  std::vector<ServerId> locations(placement_->replication());
  for (ItemId item = 0; item < num_items; ++item) {
    placement_->replicas(item, locations);
    servers_[locations[0]].pin(item);
    if (config_.unlimited_memory)
      for (std::size_t r = 1; r < locations.size(); ++r)
        servers_[locations[r]].write_replica(item);
  }
}

void RnbCluster::locations_of(ItemId item, std::vector<ServerId>& out) const {
  if (locator_ != nullptr) {
    locator_->locations(item, out);
    return;
  }
  out.resize(placement_->replication());
  placement_->replicas(item, std::span<ServerId>(out));
}

void RnbCluster::fail_server(ServerId s) {
  RNB_REQUIRE(s < down_.size());
  if (!down_[s]) {
    down_[s] = true;
    ++down_count_;
  }
}

void RnbCluster::restore_server(ServerId s) {
  RNB_REQUIRE(s < down_.size());
  if (down_[s]) {
    down_[s] = false;
    --down_count_;
  }
}

std::uint64_t RnbCluster::resident_copies() const {
  std::uint64_t total = 0;
  for (const auto& s : servers_)
    total += s.pinned_count() + s.replica_count();
  return total;
}

}  // namespace rnb
