// Request outcomes and metric accumulation (paper Section I-B definitions).
#pragma once

#include <cstdint>

#include "common/histogram.hpp"
#include "common/stats.hpp"
#include "obs/hdr_histogram.hpp"

namespace rnb {

/// Everything a single executed request tells us.
struct RequestOutcome {
  std::uint32_t items_requested = 0;
  std::uint32_t items_fetched = 0;   // >= limit target, <= requested
  std::uint32_t items_skipped = 0;   // LIMIT clause let us drop these
  std::uint32_t items_unavailable = 0;  // every replica server down
  std::uint32_t round1_transactions = 0;
  std::uint32_t round2_transactions = 0;  // distinguished-copy fallbacks
  std::uint32_t replica_misses = 0;       // assigned-server misses
  std::uint32_t db_fetches = 0;  // fallback also missed (distinguished down)
  std::uint32_t hitchhiker_saves = 0;     // misses rescued by a hitchhiker
  std::uint32_t hitchhiker_keys = 0;      // extra keys added to transactions

  // Failure-policy accounting; all zero unless a fault injector is
  // attached (clean runs are unchanged).
  std::uint32_t retries = 0;        // extra attempts beyond each first send
  std::uint32_t dropped_sends = 0;  // attempts the network lost
  std::uint32_t recover_transactions = 0;  // sends issued by cover re-plans
  std::uint32_t recover_rounds = 0;        // cover re-plans run
  std::uint32_t deadline_missed = 0;       // 1 when the wave budget ran out

  /// Round-1 counts include retries; recover-round sends are separate so
  /// the clean-path TPR definition is untouched when faults are off.
  std::uint32_t transactions() const noexcept {
    return round1_transactions + round2_transactions + recover_transactions;
  }
};

/// Aggregates outcomes over a measurement window.
class MetricsAccumulator {
 public:
  void add(const RequestOutcome& outcome);

  std::uint64_t requests() const noexcept { return tpr_.count(); }

  /// Transactions Per Request — the paper's headline metric.
  double tpr() const noexcept { return tpr_.mean(); }
  /// TPR Per Server. A zero-server fleet has no per-server rate; returns
  /// 0.0 instead of inf/NaN so reports and JSON output stay finite.
  double tprps(std::uint32_t num_servers) const noexcept {
    return num_servers == 0 ? 0.0 : tpr() / static_cast<double>(num_servers);
  }
  double mean_round2() const noexcept { return round2_.mean(); }
  double mean_misses() const noexcept { return misses_.mean(); }
  double mean_items_requested() const noexcept { return requested_.mean(); }
  double mean_items_fetched() const noexcept { return items_fetched_.mean(); }
  double mean_hitchhiker_keys() const noexcept { return hitch_keys_.mean(); }
  double mean_hitchhiker_saves() const noexcept { return hitch_saves_.mean(); }
  double mean_unavailable() const noexcept { return unavailable_.mean(); }
  double mean_db_fetches() const noexcept { return db_fetches_.mean(); }

  // Failure-policy aggregates (zero on clean runs).
  double mean_retries() const noexcept { return retries_.mean(); }
  double mean_dropped_sends() const noexcept { return drops_.mean(); }
  double mean_recover_rounds() const noexcept { return recovers_.mean(); }
  /// Fraction of requests that blew their wave budget.
  double deadline_miss_rate() const noexcept { return deadline_.mean(); }
  /// Fraction of requested items the cache tier actually served (fetched
  /// minus database rescues, over requested). The availability axis of the
  /// degradation benchmark.
  double availability() const noexcept {
    const double requested = requested_.sum();
    if (requested == 0.0) return 1.0;
    return (items_fetched_.sum() - db_fetches_.sum()) / requested;
  }

  const RunningStat& tpr_stat() const noexcept { return tpr_; }

  /// Per-request transaction-count tail (p99 TPR of the degradation
  /// bench). Backed by an HDR histogram instead of retained samples:
  /// per-request transaction counts are small integers, well inside the
  /// histogram's exact range, so the read is exact — and the accumulator's
  /// memory no longer grows with the request count.
  double tpr_quantile(double q) const {
    return static_cast<double>(tpr_hist_.quantile(q));
  }
  /// Per-request replica-miss tail. Miss counts are regime-dependent (they
  /// explode when the cache tier leaves its operating region), so the
  /// distribution — not the mean — is the honest report.
  double miss_quantile(double q) const {
    return static_cast<double>(miss_hist_.quantile(q));
  }

  /// Full distributions, for exposition and traces.
  const obs::Histogram& tpr_histogram() const noexcept { return tpr_hist_; }
  const obs::Histogram& miss_histogram() const noexcept {
    return miss_hist_;
  }

  /// Histogram of items per transaction (assigned + hitchhiker keys); the
  /// calibration model converts this into throughput.
  const Histogram& transaction_sizes() const noexcept { return txn_sizes_; }
  void record_transaction_size(std::uint64_t keys) { txn_sizes_.add(keys); }

  void merge(const MetricsAccumulator& other);

 private:
  RunningStat tpr_;
  RunningStat round2_;
  RunningStat misses_;
  RunningStat requested_;
  RunningStat items_fetched_;
  RunningStat hitch_keys_;
  RunningStat hitch_saves_;
  RunningStat unavailable_;
  RunningStat db_fetches_;
  RunningStat retries_;
  RunningStat drops_;
  RunningStat recovers_;
  RunningStat deadline_;
  obs::Histogram tpr_hist_;
  obs::Histogram miss_hist_;
  Histogram txn_sizes_;
};

}  // namespace rnb
