// Client-side policy knobs for RnB request execution.
#pragma once

#include <cstdint>

namespace rnb {

/// How the client chooses which replica of each requested item to fetch.
enum class BundlingStrategy {
  /// Always the distinguished copy. With replication 1 this is stock
  /// consistent hashing — the multi-get-hole baseline of Figs. 2-3.
  kDistinguishedOnly,
  /// A uniformly random replica per item: Facebook-style full replication
  /// (paper Section II-C, industry solution 3). Spreads load, does not
  /// reduce transactions.
  kRandomReplica,
  /// Greedy minimum set cover over replica locations — RnB proper.
  kGreedy,
  /// Minoux lazy greedy; identical picks to kGreedy, cheaper on large
  /// requests.
  kLazyGreedy,
};

const char* to_string(BundlingStrategy strategy) noexcept;

/// What a write does to the non-distinguished replicas (paper Sections
/// III-G and IV). Either way every logical replica server must be
/// contacted — the client is stateless and cannot know which replicas are
/// materialized — so the transaction cost is identical; the policies differ
/// in what the replica caches hold afterwards.
enum class WritePolicy {
  /// Update every replica in place (keeps replicas hot; paper III-G's
  /// "RnB requires updating multiple replicas").
  kUpdateAllReplicas,
  /// Update the distinguished copy, drop the others; reads repopulate them
  /// on demand (the Section IV atomic-operation scheme).
  kInvalidateReplicas,
};

const char* to_string(WritePolicy policy) noexcept;

/// Per-request execution policy (paper Sections III-C, III-D, III-F).
struct ClientPolicy {
  BundlingStrategy strategy = BundlingStrategy::kGreedy;

  /// Piggyback covered items onto every transaction whose server also holds
  /// one of their logical replicas (Section III-C2). Only affects behaviour
  /// under limited memory, where it converts replica misses into hits.
  bool hitchhiking = false;

  /// "Whenever an item is not bundled, we access its distinguished copy in
  /// order not to pollute other server caches with its copies"
  /// (Section III-C1): reroute items that ended up alone on a server.
  bool redirect_singletons = true;

  /// LIMIT-style requests (Section III-F): fetch at least this fraction of
  /// the request set; 1.0 disables partial fetching.
  double limit_fraction = 1.0;

  /// After a replica miss, install the item in the replica class of the
  /// server the cover had assigned it to (Section III-C2's write-back rule).
  bool write_back_misses = true;

  // --- Failure policy (only exercised when a TransactionFaultInjector is
  // attached; with none, every send is delivered on the first attempt and
  // these knobs are inert). The simulator has no clock, so its deadline is
  // measured in "waves": sequential network roundtrips, where all
  // transactions of one round fly in parallel.

  /// Sends attempted per transaction before the server is written off for
  /// this request (1 = no retry).
  std::uint32_t max_attempts = 3;
  /// After a server exhausts its attempts, how many times the client may
  /// re-run the greedy cover over the surviving replica locations of the
  /// still-missing items (the paper's bundling, replayed on the survivors).
  std::uint32_t max_recover_rounds = 2;
  /// Total waves a request may spend (round 1 + recover rounds + round 2);
  /// past it the request stops fetching and reports a deadline miss.
  std::uint32_t deadline_waves = 16;
};

}  // namespace rnb
