// Client-side policy knobs for RnB request execution.
#pragma once

#include <cstdint>

namespace rnb {

/// How the client chooses which replica of each requested item to fetch.
enum class BundlingStrategy {
  /// Always the distinguished copy. With replication 1 this is stock
  /// consistent hashing — the multi-get-hole baseline of Figs. 2-3.
  kDistinguishedOnly,
  /// A uniformly random replica per item: Facebook-style full replication
  /// (paper Section II-C, industry solution 3). Spreads load, does not
  /// reduce transactions.
  kRandomReplica,
  /// Greedy minimum set cover over replica locations — RnB proper.
  kGreedy,
  /// Minoux lazy greedy; identical picks to kGreedy, cheaper on large
  /// requests.
  kLazyGreedy,
};

const char* to_string(BundlingStrategy strategy) noexcept;

/// What a write does to the non-distinguished replicas (paper Sections
/// III-G and IV). Either way every logical replica server must be
/// contacted — the client is stateless and cannot know which replicas are
/// materialized — so the transaction cost is identical; the policies differ
/// in what the replica caches hold afterwards.
enum class WritePolicy {
  /// Update every replica in place (keeps replicas hot; paper III-G's
  /// "RnB requires updating multiple replicas").
  kUpdateAllReplicas,
  /// Update the distinguished copy, drop the others; reads repopulate them
  /// on demand (the Section IV atomic-operation scheme).
  kInvalidateReplicas,
};

const char* to_string(WritePolicy policy) noexcept;

/// Per-request execution policy (paper Sections III-C, III-D, III-F).
struct ClientPolicy {
  BundlingStrategy strategy = BundlingStrategy::kGreedy;

  /// Piggyback covered items onto every transaction whose server also holds
  /// one of their logical replicas (Section III-C2). Only affects behaviour
  /// under limited memory, where it converts replica misses into hits.
  bool hitchhiking = false;

  /// "Whenever an item is not bundled, we access its distinguished copy in
  /// order not to pollute other server caches with its copies"
  /// (Section III-C1): reroute items that ended up alone on a server.
  bool redirect_singletons = true;

  /// LIMIT-style requests (Section III-F): fetch at least this fraction of
  /// the request set; 1.0 disables partial fetching.
  double limit_fraction = 1.0;

  /// After a replica miss, install the item in the replica class of the
  /// server the cover had assigned it to (Section III-C2's write-back rule).
  bool write_back_misses = true;
};

}  // namespace rnb
