// The RnB client: plan (replicate-aware bundling) + execute (two-round
// fetch with miss fallback to distinguished copies).
//
// Execution pipeline per request (paper Sections III-A/C/D/F):
//   1. Compute every requested item's logical replica locations.
//   2. Solve (partial) set cover with the configured strategy — this picks
//      one server per fetched item and the set of round-1 transactions.
//   3. Redirect singletons: an item alone on its server is rerouted to its
//      distinguished copy so replica caches aren't polluted for nothing.
//   4. Optionally attach hitchhikers: a transaction to server s also asks
//      for any other fetched item with a logical replica on s.
//   5. Execute round 1 against the servers' two-class stores. Distinguished
//      hits are guaranteed; replica probes may miss under limited memory.
//   6. Items still unsatisfied form round 2: bundled fetches from their
//      distinguished servers (always hits), plus write-back of the missing
//      replica to the round-1 server that was supposed to have it.
//
// The client is stateless across requests — cross-request adaptation lives
// in the servers' LRU state, exactly as the paper argues, or (opt-in) in an
// attached RequestObserver such as the adaptive-replication controller.
#pragma once

#include <span>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/metrics.hpp"
#include "cluster/policies.hpp"
#include "common/rng.hpp"
#include "setcover/cover.hpp"

namespace rnb {

/// Post-execution hook for online adaptation. The adaptive-replication
/// controller implements this to feed its popularity sketches from the
/// client's executed requests; the callback runs after the request has
/// completed and its metrics are recorded, so a rebalance triggered inside
/// it affects only subsequent requests.
class RequestObserver {
 public:
  virtual ~RequestObserver() = default;

  /// Called once per executed read request with its deduplicated items.
  virtual void on_request(std::span<const ItemId> items) = 0;
};

/// Per-send fault decision for the simulated transport. The faultsim
/// module implements this over a deterministic schedule; with no injector
/// attached every send is delivered and execution is byte-identical to
/// pre-faultsim builds. Called once per attempted transaction send (so
/// retries consult it again), in the client's deterministic send order.
class TransactionFaultInjector {
 public:
  virtual ~TransactionFaultInjector() = default;

  /// True when the message reaches the server and its response returns.
  virtual bool on_send(ServerId s) = 0;
};

/// A fully planned request, before touching any server. Exposed separately
/// from execution so tests and the locality bench can inspect plans.
struct RequestPlan {
  /// Deduplicated items, in first-appearance order.
  std::vector<ItemId> items;
  /// Replica locations per item (parallel to `items`).
  std::vector<std::vector<ServerId>> locations;
  /// items[i] is fetched from assignment[i]; kInvalidServer => skipped by
  /// the LIMIT clause, or unavailable (see below).
  std::vector<ServerId> assignment;
  /// Distinct round-1 servers in transaction order.
  std::vector<ServerId> servers;
  /// unavailable[i]: every replica server of items[i] is down; the item
  /// cannot be served by the cache tier at all.
  std::vector<bool> unavailable;
  /// Minimum number of items the LIMIT clause requires (over the available
  /// items when servers are down).
  std::size_t limit_target = 0;
};

class RnbClient {
 public:
  /// The client holds a reference to the cluster; the rng drives only the
  /// kRandomReplica baseline.
  RnbClient(RnbCluster& cluster, const ClientPolicy& policy,
            std::uint64_t rng_seed = 0x9e3779b9u);

  const ClientPolicy& policy() const noexcept { return policy_; }

  /// Attach a post-execution observer (non-owning, nullable). Used by the
  /// adaptive-replication subsystem; see src/adaptive/controller.hpp.
  void set_observer(RequestObserver* observer) noexcept {
    observer_ = observer;
  }

  /// Attach a per-send fault injector (non-owning, nullable). Used by the
  /// faultsim subsystem; see src/faultsim/sim_fault_driver.hpp.
  void set_fault_injector(TransactionFaultInjector* injector) noexcept {
    fault_ = injector;
  }

  /// Plan without executing (no server state is touched).
  RequestPlan plan(std::span<const ItemId> request_items);

  /// Plan + execute, mutating server cache state, optionally recording each
  /// transaction's key count into `metrics` (may be nullptr).
  RequestOutcome execute(std::span<const ItemId> request_items,
                         MetricsAccumulator* metrics = nullptr);

  /// Execute a write batch: every logical replica server of every item must
  /// be contacted (Section III-G), so the transaction count is the number
  /// of distinct servers across ALL replicas — no cover to solve. What the
  /// contact does to replica state is governed by `write_policy`.
  RequestOutcome execute_write(std::span<const ItemId> items,
                               WritePolicy write_policy,
                               MetricsAccumulator* metrics = nullptr);

 private:
  CoverResult run_strategy(const CoverInstance& instance, std::size_t target);
  void redirect_singletons(RequestPlan& plan) const;

  RnbCluster& cluster_;
  ClientPolicy policy_;
  RequestObserver* observer_ = nullptr;
  TransactionFaultInjector* fault_ = nullptr;
  Xoshiro256 rng_;
};

}  // namespace rnb
