#include "cluster/policies.hpp"

namespace rnb {

const char* to_string(BundlingStrategy strategy) noexcept {
  switch (strategy) {
    case BundlingStrategy::kDistinguishedOnly:
      return "distinguished";
    case BundlingStrategy::kRandomReplica:
      return "random-replica";
    case BundlingStrategy::kGreedy:
      return "greedy";
    case BundlingStrategy::kLazyGreedy:
      return "lazy-greedy";
  }
  return "?";
}

const char* to_string(WritePolicy policy) noexcept {
  switch (policy) {
    case WritePolicy::kUpdateAllReplicas:
      return "update-all";
    case WritePolicy::kInvalidateReplicas:
      return "invalidate";
  }
  return "?";
}

}  // namespace rnb
