#include "cluster/metrics.hpp"

namespace rnb {

void MetricsAccumulator::add(const RequestOutcome& outcome) {
  tpr_.add(static_cast<double>(outcome.transactions()));
  tpr_hist_.record(outcome.transactions());
  miss_hist_.record(outcome.replica_misses);
  round2_.add(static_cast<double>(outcome.round2_transactions));
  misses_.add(static_cast<double>(outcome.replica_misses));
  requested_.add(static_cast<double>(outcome.items_requested));
  items_fetched_.add(static_cast<double>(outcome.items_fetched));
  hitch_keys_.add(static_cast<double>(outcome.hitchhiker_keys));
  hitch_saves_.add(static_cast<double>(outcome.hitchhiker_saves));
  unavailable_.add(static_cast<double>(outcome.items_unavailable));
  db_fetches_.add(static_cast<double>(outcome.db_fetches));
  retries_.add(static_cast<double>(outcome.retries));
  drops_.add(static_cast<double>(outcome.dropped_sends));
  recovers_.add(static_cast<double>(outcome.recover_rounds));
  deadline_.add(static_cast<double>(outcome.deadline_missed));
}

void MetricsAccumulator::merge(const MetricsAccumulator& other) {
  tpr_.merge(other.tpr_);
  tpr_hist_.merge(other.tpr_hist_);
  miss_hist_.merge(other.miss_hist_);
  round2_.merge(other.round2_);
  misses_.merge(other.misses_);
  requested_.merge(other.requested_);
  items_fetched_.merge(other.items_fetched_);
  hitch_keys_.merge(other.hitch_keys_);
  hitch_saves_.merge(other.hitch_saves_);
  unavailable_.merge(other.unavailable_);
  db_fetches_.merge(other.db_fetches_);
  retries_.merge(other.retries_);
  drops_.merge(other.drops_);
  recovers_.merge(other.recovers_);
  deadline_.merge(other.deadline_);
  txn_sizes_.merge(other.txn_sizes_);
}

}  // namespace rnb
