#include "cluster/metrics.hpp"

namespace rnb {

void MetricsAccumulator::add(const RequestOutcome& outcome) {
  tpr_.add(static_cast<double>(outcome.transactions()));
  round2_.add(static_cast<double>(outcome.round2_transactions));
  misses_.add(static_cast<double>(outcome.replica_misses));
  items_fetched_.add(static_cast<double>(outcome.items_fetched));
  hitch_keys_.add(static_cast<double>(outcome.hitchhiker_keys));
  hitch_saves_.add(static_cast<double>(outcome.hitchhiker_saves));
  unavailable_.add(static_cast<double>(outcome.items_unavailable));
  db_fetches_.add(static_cast<double>(outcome.db_fetches));
}

void MetricsAccumulator::merge(const MetricsAccumulator& other) {
  tpr_.merge(other.tpr_);
  round2_.merge(other.round2_);
  misses_.merge(other.misses_);
  items_fetched_.merge(other.items_fetched_);
  hitch_keys_.merge(other.hitch_keys_);
  hitch_saves_.merge(other.hitch_saves_);
  unavailable_.merge(other.unavailable_);
  db_fetches_.merge(other.db_fetches_);
  txn_sizes_.merge(other.txn_sizes_);
}

}  // namespace rnb
