#include "cluster/client.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"
#include "obs/slow_log.hpp"
#include "obs/trace.hpp"
#include "setcover/baselines.hpp"
#include "setcover/greedy.hpp"
#include "setcover/lazy_greedy.hpp"

namespace rnb {

RnbClient::RnbClient(RnbCluster& cluster, const ClientPolicy& policy,
                     std::uint64_t rng_seed)
    : cluster_(cluster), policy_(policy), rng_(rng_seed) {
  RNB_REQUIRE(policy.limit_fraction > 0.0 && policy.limit_fraction <= 1.0);
}

CoverResult RnbClient::run_strategy(const CoverInstance& instance,
                                    std::size_t target) {
  switch (policy_.strategy) {
    case BundlingStrategy::kDistinguishedOnly:
      return distinguished_assignment(instance);
    case BundlingStrategy::kRandomReplica:
      return random_replica_assignment(instance, rng_);
    case BundlingStrategy::kGreedy:
      return greedy_cover_partial(instance, target);
    case BundlingStrategy::kLazyGreedy:
      return lazy_greedy_cover_partial(instance, target);
  }
  RNB_REQUIRE(false && "unknown bundling strategy");
  return {};
}

void RnbClient::redirect_singletons(RequestPlan& plan) const {
  // Count assigned items per server, then reroute any singleton to its
  // distinguished server. Repeating is unnecessary: rerouting only ever
  // moves items toward distinguished servers, and an item moved onto a
  // server makes that server non-singleton.
  std::unordered_map<ServerId, std::uint32_t> load;
  for (const ServerId s : plan.assignment)
    if (s != kInvalidServer) ++load[s];
  bool changed = false;
  for (std::size_t i = 0; i < plan.items.size(); ++i) {
    const ServerId s = plan.assignment[i];
    if (s == kInvalidServer || load[s] != 1) continue;
    const ServerId home = plan.locations[i][0];
    if (home == s || cluster_.is_down(home)) continue;
    --load[s];
    ++load[home];
    plan.assignment[i] = home;
    changed = true;
  }
  if (!changed) return;
  // Rebuild the transaction server list in stable first-use order.
  plan.servers.clear();
  std::unordered_set<ServerId> seen;
  for (const ServerId s : plan.assignment)
    if (s != kInvalidServer && seen.insert(s).second)
      plan.servers.push_back(s);
}

RequestPlan RnbClient::plan(std::span<const ItemId> request_items) {
  obs::SpanScope cover_span("cover", "client");
  RequestPlan out;
  // Deduplicate, preserving first-appearance order (merged requests can
  // contain the same item twice; it is fetched once).
  {
    std::unordered_set<ItemId> seen;
    out.items.reserve(request_items.size());
    for (const ItemId item : request_items)
      if (seen.insert(item).second) out.items.push_back(item);
  }
  const std::size_t m = out.items.size();
  out.locations.resize(m);
  out.unavailable.assign(m, false);
  // Per-item location lists may have different lengths: with an adaptive
  // locator attached, hot items carry extra replicas and cold ones only
  // their distinguished copy. The cover solver takes candidates as-is.
  for (std::size_t i = 0; i < m; ++i)
    cluster_.locations_of(out.items[i], out.locations[i]);

  if (cluster_.down_count() == 0) {
    // Fast path: every replica is a live candidate.
    out.limit_target =
        CoverInstance::target_from_fraction(m, policy_.limit_fraction);
    CoverInstance instance;
    instance.candidates.resize(m);
    for (std::size_t i = 0; i < m; ++i)
      instance.candidates[i] = out.locations[i];
    CoverResult cover = run_strategy(instance, out.limit_target);
    out.assignment = std::move(cover.assignment);
    out.servers = std::move(cover.servers_used);
  } else {
    // Degraded mode: cover only the live replicas; items whose replicas are
    // all down are unavailable and excluded from the instance (and from the
    // LIMIT target — the clause promises a fraction of what is servable).
    CoverInstance instance;
    std::vector<std::size_t> available;  // instance index -> item index
    for (std::size_t i = 0; i < m; ++i) {
      std::vector<ServerId> live;
      for (const ServerId s : out.locations[i])
        if (!cluster_.is_down(s)) live.push_back(s);
      if (live.empty()) {
        out.unavailable[i] = true;
        continue;
      }
      available.push_back(i);
      instance.candidates.push_back(std::move(live));
    }
    out.limit_target = CoverInstance::target_from_fraction(
        available.size(), policy_.limit_fraction);
    const CoverResult cover = run_strategy(instance, out.limit_target);
    out.assignment.assign(m, kInvalidServer);
    for (std::size_t j = 0; j < available.size(); ++j)
      out.assignment[available[j]] = cover.assignment[j];
    out.servers = cover.servers_used;
  }

  if (policy_.redirect_singletons) redirect_singletons(out);
  cover_span.arg("items", static_cast<std::int64_t>(m));
  cover_span.arg("transactions", static_cast<std::int64_t>(out.servers.size()));
  return out;
}

RequestOutcome RnbClient::execute(std::span<const ItemId> request_items,
                                  MetricsAccumulator* metrics) {
  // Root span: cover, waves, and transactions all trace back to it, and
  // its trace id is what the slow-request log reports for this request.
  obs::SpanScope req_span("request", "client", obs::SpanScope::Kind::kRoot);
  RequestPlan p = plan(request_items);
  const std::size_t m = p.items.size();
  req_span.arg("items", static_cast<std::int64_t>(m));

  RequestOutcome outcome;
  outcome.items_requested = static_cast<std::uint32_t>(m);

  // Group assigned items by server, preserving p.servers order.
  std::unordered_map<ServerId, std::vector<std::size_t>> assigned;
  for (std::size_t i = 0; i < m; ++i)
    if (p.assignment[i] != kInvalidServer)
      assigned[p.assignment[i]].push_back(i);

  // Hitchhikers: item i rides along on the transaction to server s when s
  // holds one of i's logical replicas but the cover sent i elsewhere.
  std::unordered_map<ServerId, std::vector<std::size_t>> hitchhikers;
  if (policy_.hitchhiking) {
    std::unordered_set<ServerId> in_plan(p.servers.begin(), p.servers.end());
    for (std::size_t i = 0; i < m; ++i) {
      if (p.assignment[i] == kInvalidServer) continue;  // skipped by LIMIT
      for (const ServerId s : p.locations[i])
        if (s != p.assignment[i] && in_plan.contains(s))
          hitchhikers[s].push_back(i);
    }
  }

  // Every server this request sent at least one transaction to.
  std::unordered_set<ServerId> contacted;
  // Servers that ate every attempt this request gave them. Only meaningful
  // under an attached fault injector — a clean run never fails a send.
  std::vector<char> failed(fault_ == nullptr ? 0 : cluster_.num_servers(), 0);
  const auto has_failed = [&failed](ServerId s) {
    return !failed.empty() && failed[s] != 0;
  };

  // One transaction send with bounded same-server retries. Counts every
  // attempt into `txn_counter` (client+network cost), server work only when
  // delivered. `wave` rises to the sequential roundtrips this server used,
  // so parallel fan-out charges the request max-over-servers, not the sum.
  const auto send_with_retries = [&](ServerId s, std::uint32_t& txn_counter,
                                     std::uint32_t& wave,
                                     obs::SpanScope* span = nullptr) -> bool {
    const std::uint32_t attempts =
        fault_ == nullptr ? 1 : std::max(1u, policy_.max_attempts);
    contacted.insert(s);
    for (std::uint32_t a = 0; a < attempts; ++a) {
      ++txn_counter;
      if (a > 0) {
        ++outcome.retries;
        if (obs::Tracer* t = obs::Tracer::current())
          t->instant("retry", "client",
                     {{"server", static_cast<std::int64_t>(s)},
                      {"attempt", static_cast<std::int64_t>(a)}});
      }
      wave = std::max(wave, a + 1);
      if (fault_ == nullptr || fault_->on_send(s)) {
        cluster_.note_transaction(s);
        return true;
      }
      ++outcome.dropped_sends;
      if (span != nullptr) span->note("fault", "drop");
    }
    failed[s] = 1;
    return false;
  };

  // Round 1. satisfied[i] means a server returned the item.
  std::vector<bool> satisfied(m, false);
  std::uint32_t round1_wave = 0;
  {
    obs::SpanScope wave_span("wave", "client");
    wave_span.note("kind", "round1");
    wave_span.arg("transactions", static_cast<std::int64_t>(p.servers.size()));
    for (const ServerId s : p.servers) {
      obs::SpanScope txn_span("transaction", "client");
      txn_span.arg("server", static_cast<std::int64_t>(s));
      if (!send_with_retries(s, outcome.round1_transactions, round1_wave,
                             &txn_span))
        continue;
      TwoClassStore& server = cluster_.server(s);
      std::uint64_t keys_in_txn = 0;
      for (const std::size_t i : assigned[s]) {
        ++keys_in_txn;
        if (server.read(p.items[i])) satisfied[i] = true;
      }
      if (const auto hit_it = hitchhikers.find(s);
          hit_it != hitchhikers.end()) {
        for (const std::size_t i : hit_it->second) {
          ++keys_in_txn;
          ++outcome.hitchhiker_keys;
          // Paper rule: update the LRU only upon a hitchhiker hit — probe
          // first, and only touch recency when the copy is actually there.
          if (server.contains(p.items[i])) {
            server.read(p.items[i]);
            if (!satisfied[i]) ++outcome.hitchhiker_saves;
            satisfied[i] = true;
          }
        }
      }
      txn_span.arg("keys", static_cast<std::int64_t>(keys_in_txn));
      if (metrics != nullptr) metrics->record_transaction_size(keys_in_txn);
    }
  }
  std::uint32_t waves_used = round1_wave;

  // Recover rounds: items stranded on a failed server get the greedy cover
  // re-run over their surviving replica locations — the bundling step
  // replayed on whatever replication has left standing. Each re-plan is a
  // fresh chance to bundle, so a failure costs extra waves, not the items.
  while (fault_ != nullptr &&
         outcome.recover_rounds < policy_.max_recover_rounds) {
    CoverInstance instance;
    std::vector<std::size_t> pool;  // instance index -> item index
    for (std::size_t i = 0; i < m; ++i) {
      if (satisfied[i] || p.assignment[i] == kInvalidServer ||
          !has_failed(p.assignment[i]))
        continue;
      std::vector<ServerId> live;
      for (const ServerId s : p.locations[i])
        if (!cluster_.is_down(s) && !has_failed(s)) live.push_back(s);
      if (live.empty()) continue;  // round 2 / database will pick this up
      pool.push_back(i);
      instance.candidates.push_back(std::move(live));
    }
    if (pool.empty()) break;
    if (waves_used >= policy_.deadline_waves) {
      outcome.deadline_missed = 1;
      break;
    }
    ++outcome.recover_rounds;
    obs::SpanScope wave_span("wave", "client");
    wave_span.note("kind", "recover");
    wave_span.arg("round",
                  static_cast<std::int64_t>(outcome.recover_rounds));
    const CoverResult cover = greedy_cover(instance);
    std::unordered_map<ServerId, std::vector<std::size_t>> bundles;
    for (std::size_t j = 0; j < pool.size(); ++j) {
      p.assignment[pool[j]] = cover.assignment[j];
      bundles[cover.assignment[j]].push_back(pool[j]);
    }
    std::uint32_t recover_wave = 0;
    for (const ServerId s : cover.servers_used) {
      obs::SpanScope txn_span("transaction", "client");
      txn_span.arg("server", static_cast<std::int64_t>(s));
      if (!send_with_retries(s, outcome.recover_transactions, recover_wave,
                             &txn_span))
        continue;
      TwoClassStore& server = cluster_.server(s);
      for (const std::size_t i : bundles[s])
        if (server.read(p.items[i])) satisfied[i] = true;
      txn_span.arg("keys", static_cast<std::int64_t>(bundles[s].size()));
      if (metrics != nullptr)
        metrics->record_transaction_size(bundles[s].size());
    }
    waves_used += recover_wave;
  }

  // Round 2: unsatisfied items fall back to their distinguished copies —
  // or, when the distinguished server is down or failed, to the first
  // usable replica — bundled per fallback server. (An item assigned to its
  // own distinguished server cannot reach here — pinned copies always hit.)
  std::unordered_map<ServerId, std::vector<std::size_t>> fallback;
  for (std::size_t i = 0; i < m; ++i) {
    const ServerId s = p.assignment[i];
    if (s == kInvalidServer) {
      if (p.unavailable[i])
        ++outcome.items_unavailable;
      else
        ++outcome.items_skipped;
      continue;
    }
    if (satisfied[i]) continue;
    ++outcome.replica_misses;
    // Fallback target: the first live, non-failed replica other than the
    // server that just missed. If none exists, there is no point in a
    // second round — the item comes straight from the database.
    ServerId target = kInvalidServer;
    for (const ServerId candidate : p.locations[i])
      if (candidate != s && !cluster_.is_down(candidate) &&
          !has_failed(candidate)) {
        target = candidate;
        break;
      }
    if (target == kInvalidServer) {
      ++outcome.db_fetches;
      satisfied[i] = true;
      if (policy_.write_back_misses && !has_failed(s))
        cluster_.server(s).write_replica(p.items[i]);
      continue;
    }
    fallback[target].push_back(i);
  }
  if (!fallback.empty() && waves_used >= policy_.deadline_waves) {
    // Out of budget before the fallback wave: the request returns without
    // these items. They are neither skipped nor unavailable — the deadline
    // ate them, which is exactly what the metric records.
    outcome.deadline_missed = 1;
    fallback.clear();
  }
  // Ordered iteration keeps cross-server write-back order — and therefore
  // every LRU's exact state — independent of the hash map implementation.
  std::vector<ServerId> fallback_servers;
  fallback_servers.reserve(fallback.size());
  for (const auto& [home, idxs] : fallback) fallback_servers.push_back(home);
  std::sort(fallback_servers.begin(), fallback_servers.end());
  std::uint32_t round2_wave = 0;
  if (!fallback_servers.empty()) {
    obs::SpanScope wave_span("wave", "client");
    wave_span.note("kind", "round2");
    wave_span.arg("transactions",
                  static_cast<std::int64_t>(fallback_servers.size()));
    for (const ServerId home : fallback_servers) {
      const std::vector<std::size_t>& idxs = fallback[home];
      obs::SpanScope txn_span("transaction", "client");
      txn_span.arg("server", static_cast<std::int64_t>(home));
      txn_span.arg("keys", static_cast<std::int64_t>(idxs.size()));
      if (!send_with_retries(home, outcome.round2_transactions, round2_wave,
                             &txn_span)) {
        // Fallback unreachable too: the last resort is the database.
        for (const std::size_t i : idxs) {
          ++outcome.db_fetches;
          satisfied[i] = true;
        }
        continue;
      }
      TwoClassStore& server = cluster_.server(home);
      for (const std::size_t i : idxs) {
        const bool hit = server.read(p.items[i]);
        if (!hit) {
          // Only possible when the true distinguished server is down (or ate
          // this request's attempts) and the fallback replica was cold: the
          // item comes from the database (paper Section I-B's miss path). It
          // still reaches the user.
          RNB_ENSURE(cluster_.is_down(p.locations[i][0]) ||
                     has_failed(p.locations[i][0]));
          ++outcome.db_fetches;
        }
        satisfied[i] = true;
        // Write-back: install the replica where round 1 expected it, so the
        // next similar request hits (Section III-C2's write rule).
        if (policy_.write_back_misses)
          cluster_.server(p.assignment[i]).write_replica(p.items[i]);
      }
      if (metrics != nullptr)
        metrics->record_transaction_size(idxs.size());
    }
  }
  outcome.items_fetched = static_cast<std::uint32_t>(
      std::count(satisfied.begin(), satisfied.end(), true));
  req_span.arg("transactions",
               static_cast<std::int64_t>(outcome.round1_transactions +
                                         outcome.recover_transactions +
                                         outcome.round2_transactions));
  req_span.arg("retries", static_cast<std::int64_t>(outcome.retries));
  if (obs::SlowLog* slow = obs::SlowLog::current()) {
    obs::SlowRequest sr;
    sr.trace_id = req_span.context().trace_id;
    // The simulator has no latency model; its cost unit is transactions
    // (the paper's own y-axis), so "slow" means "expensive to serve".
    sr.cost = outcome.round1_transactions + outcome.recover_transactions +
              outcome.round2_transactions;
    sr.items = outcome.items_requested;
    sr.transactions = static_cast<std::uint32_t>(sr.cost);
    sr.waves = waves_used + round2_wave;
    sr.hitchhikes = outcome.hitchhiker_keys;
    sr.retries = outcome.retries;
    sr.servers = static_cast<std::uint32_t>(contacted.size());
    sr.deadline_missed = outcome.deadline_missed != 0;
    slow->record(sr);
  }

  if (metrics != nullptr) metrics->add(outcome);
  if (observer_ != nullptr) observer_->on_request(p.items);
  return outcome;
}

RequestOutcome RnbClient::execute_write(std::span<const ItemId> items,
                                        WritePolicy write_policy,
                                        MetricsAccumulator* metrics) {
  obs::SpanScope req_span("write_request", "client");
  // Dedup, first-appearance order.
  std::vector<ItemId> unique;
  {
    std::unordered_set<ItemId> seen;
    unique.reserve(items.size());
    for (const ItemId item : items)
      if (seen.insert(item).second) unique.push_back(item);
  }

  RequestOutcome outcome;
  outcome.items_requested = static_cast<std::uint32_t>(unique.size());
  outcome.items_fetched = outcome.items_requested;

  // Group every replica of every item by server; a write transaction to a
  // server carries all the keys it stores for this batch.
  std::unordered_map<ServerId, std::vector<std::pair<ItemId, bool>>> batches;
  std::vector<ServerId> order;  // deterministic first-use server order
  std::vector<ServerId> locations;
  for (const ItemId item : unique) {
    cluster_.locations_of(item, locations);
    for (std::size_t rank = 0; rank < locations.size(); ++rank) {
      auto [it, inserted] = batches.try_emplace(locations[rank]);
      if (inserted) order.push_back(locations[rank]);
      it->second.emplace_back(item, rank == 0);
    }
  }

  for (const ServerId s : order) {
    cluster_.note_transaction(s);
    TwoClassStore& server = cluster_.server(s);
    for (const auto& [item, is_distinguished] : batches[s]) {
      if (is_distinguished) continue;  // pinned copy updates in place
      if (write_policy == WritePolicy::kUpdateAllReplicas)
        server.write_replica(item);
      else
        server.drop_replica(item);
    }
    if (metrics != nullptr) metrics->record_transaction_size(batches[s].size());
  }
  outcome.round1_transactions = static_cast<std::uint32_t>(order.size());
  req_span.arg("items", static_cast<std::int64_t>(unique.size()));
  req_span.arg("transactions", static_cast<std::int64_t>(order.size()));
  if (metrics != nullptr) metrics->add(outcome);
  return outcome;
}

}  // namespace rnb
