#include "adaptive/controller.hpp"

#include <algorithm>

namespace rnb {

namespace {

std::uint32_t effective_tracker_capacity(const AdaptiveConfig& config,
                                         std::uint32_t r_min,
                                         std::uint64_t num_items) {
  if (config.tracker_capacity != 0) return config.tracker_capacity;
  // Depth: enough slots to spend the whole budget at the per-item cap.
  // Breadth: when the budget rivals the universe size, the policy must be
  // able to spread leftover replicas past the hot head, so track (up to)
  // every item — Space-Saving with capacity >= distinct items is exact.
  const std::uint32_t per_item =
      config.r_max > r_min ? config.r_max - r_min : 1;
  const std::uint64_t depth = config.extra_replica_budget / per_item + 64;
  const std::uint64_t breadth =
      std::min<std::uint64_t>(config.extra_replica_budget + 64, num_items);
  return static_cast<std::uint32_t>(
      std::clamp<std::uint64_t>(std::max(depth, breadth), 64, 1u << 20));
}

}  // namespace

AdaptiveController::AdaptiveController(RnbCluster& cluster,
                                       const AdaptiveConfig& config)
    : cluster_(cluster),
      config_(config),
      sketch_(config.sketch_depth, config.sketch_width,
              splitmix64(config.seed)),
      tracker_(effective_tracker_capacity(config, cluster.replication(),
                                          cluster.num_items())),
      overlay_(cluster.placement(), config.r_max,
               hash_combine(config.seed, 0xad4b71feULL)),
      rebalancer_(cluster, overlay_),
      policy_(config) {
  cluster_.attach_locator(&overlay_);
}

AdaptiveController::~AdaptiveController() {
  if (cluster_.locator() == &overlay_) cluster_.attach_locator(nullptr);
}

void AdaptiveController::on_request(std::span<const ItemId> items) {
  for (const ItemId item : items) {
    sketch_.add(item);
    tracker_.add(item);
  }
  ++requests_;
  if (config_.epoch_requests != 0 && requests_ % config_.epoch_requests == 0)
    rebalance();
}

void AdaptiveController::rebalance() {
  const std::vector<ReplicaTarget> targets = policy_.plan(
      tracker_, sketch_, overlay_.base_degree(), overlay_.r_cap());
  rebalancer_.apply(targets);
  if (config_.age_sketch) sketch_.halve();
}

}  // namespace rnb
