// Per-item replica degrees layered over a fixed PlacementPolicy.
//
// The base placement stays exactly what the cluster pinned distinguished
// copies with — replica ranks [0, r_min) are untouched, so every invariant
// the client relies on (rank 0 always hits) survives. Ranks [r_min, degree)
// are extra pseudo-random servers drawn from a seeded HashFamily, distinct
// from all earlier ranks and *prefix-stable*: the rank sequence of an item
// does not depend on its current degree, so raising a degree appends
// servers and lowering it trims the tail. The epoch rebalancer leans on
// that property to compute exact promotion/demotion diffs.
//
// Lookup is deterministic in (item, seed) alone — any client recomputes the
// same list, exactly like the base placement (paper Section III-B's
// stateless-placement requirement).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "hashring/placement.hpp"

namespace rnb {

class PlacementOverlay final : public ReplicaLocator {
 public:
  /// `base` must outlive the overlay. `r_max` caps per-item degrees (also
  /// clamped to base.num_servers()).
  PlacementOverlay(const PlacementPolicy& base, std::uint32_t r_max,
                   std::uint64_t seed);

  /// The floor every item keeps: the base placement's replication.
  std::uint32_t base_degree() const noexcept { return base_degree_; }
  std::uint32_t r_cap() const noexcept { return r_cap_; }

  /// Current logical degree of `item` (== base_degree() when unboosted).
  std::uint32_t degree(ItemId item) const;

  /// Set `item`'s degree, clamped into [base_degree, r_cap]. Setting the
  /// base degree forgets the item entirely.
  void set_degree(ItemId item, std::uint32_t degree);

  /// ReplicaLocator: locations at the item's current degree.
  void locations(ItemId item, std::vector<ServerId>& out) const override;

  /// Locations as if the item had degree `degree` (prefix-stable with the
  /// current-degree list); the rebalancer diffs old vs new through this.
  void locations_with_degree(ItemId item, std::uint32_t degree,
                             std::vector<ServerId>& out) const;

  /// Sum of (degree - base_degree) over boosted items — what the policy's
  /// budget bounds.
  std::uint64_t extra_replicas() const noexcept { return extra_; }
  std::size_t boosted_items() const noexcept { return degrees_.size(); }

  /// Boosted item ids, ascending (deterministic iteration for rebalances).
  std::vector<ItemId> boosted_ids_sorted() const;

  const PlacementPolicy& base() const noexcept { return base_; }

 private:
  const PlacementPolicy& base_;
  std::uint32_t base_degree_;
  std::uint32_t r_cap_;
  HashFamily family_;
  std::uint64_t extra_ = 0;
  std::unordered_map<ItemId, std::uint32_t> degrees_;  // only > base_degree_
};

}  // namespace rnb
