// Epoch-based replica migration: apply policy targets to a live cluster.
//
// A rebalance turns a list of ReplicaTargets into the minimal set of
// promotions (materialize a replica on its new server) and demotions
// (invalidate a replica on its old server), exploiting the overlay's
// prefix-stable rank lists: changing degree d_old -> d_new touches exactly
// the servers at ranks [min, max) of the item's rank sequence. Every
// touched server costs one migration transaction carrying all the keys it
// gains or loses that epoch, and the transactions are accounted in a
// MetricsAccumulator — the bench charges migration overhead against the
// TPR savings it buys.
//
// Demotions run before promotions so the replica classes shrink before they
// grow, and all iteration orders are sorted — two runs with equal seeds
// perform byte-identical migrations.
#pragma once

#include <cstdint>
#include <span>

#include "adaptive/overlay.hpp"
#include "adaptive/policy.hpp"
#include "cluster/cluster.hpp"
#include "cluster/metrics.hpp"

namespace rnb {

struct RebalanceStats {
  std::uint64_t epochs = 0;
  std::uint64_t items_promoted = 0;   // degree raised
  std::uint64_t items_demoted = 0;    // degree lowered
  std::uint64_t replicas_added = 0;   // copies materialized
  std::uint64_t replicas_dropped = 0; // copies invalidated
  /// One "request" per epoch whose transactions are the distinct servers
  /// contacted; transaction sizes are keys moved per server. migration.tpr()
  /// is therefore mean migration transactions per epoch.
  MetricsAccumulator migration;
};

class EpochRebalancer {
 public:
  /// Both references must outlive the rebalancer; `overlay` must be the
  /// locator attached to `cluster`.
  EpochRebalancer(RnbCluster& cluster, PlacementOverlay& overlay)
      : cluster_(cluster), overlay_(overlay) {}

  /// Promote/demote so the boosted set becomes exactly `targets` (items not
  /// listed shed back to the base degree).
  void apply(std::span<const ReplicaTarget> targets);

  const RebalanceStats& stats() const noexcept { return stats_; }

 private:
  RnbCluster& cluster_;
  PlacementOverlay& overlay_;
  RebalanceStats stats_;
};

}  // namespace rnb
