#include "adaptive/rebalancer.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

namespace rnb {

void EpochRebalancer::apply(std::span<const ReplicaTarget> targets) {
  std::unordered_map<ItemId, std::uint32_t> desired;
  desired.reserve(targets.size());
  for (const ReplicaTarget& t : targets) desired[t.item] = t.degree;

  // Affected items: everything currently boosted plus everything targeted,
  // visited in ascending id order so migrations are reproducible.
  std::vector<ItemId> affected = overlay_.boosted_ids_sorted();
  for (const ReplicaTarget& t : targets) affected.push_back(t.item);
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());

  std::map<ServerId, std::uint64_t> keys_per_server;
  std::vector<ServerId> ranks;
  std::uint32_t changed_items = 0;

  // Pass 1: demotions free replica memory before promotions claim it.
  for (const bool promote_pass : {false, true}) {
    for (const ItemId item : affected) {
      const std::uint32_t d_old = overlay_.degree(item);
      const auto it = desired.find(item);
      const std::uint32_t d_new = std::clamp(
          it == desired.end() ? overlay_.base_degree() : it->second,
          overlay_.base_degree(), overlay_.r_cap());
      if (d_new == d_old || (d_new > d_old) != promote_pass) continue;

      overlay_.locations_with_degree(item, std::max(d_old, d_new), ranks);
      if (promote_pass) {
        for (std::uint32_t r = d_old; r < d_new; ++r) {
          cluster_.server(ranks[r]).write_replica(item);
          ++keys_per_server[ranks[r]];
          ++stats_.replicas_added;
        }
        ++stats_.items_promoted;
      } else {
        for (std::uint32_t r = d_new; r < d_old; ++r) {
          cluster_.server(ranks[r]).drop_replica(item);
          ++keys_per_server[ranks[r]];
          ++stats_.replicas_dropped;
        }
        ++stats_.items_demoted;
      }
      overlay_.set_degree(item, d_new);
      ++changed_items;
    }
  }

  RequestOutcome outcome;
  outcome.items_requested = changed_items;
  outcome.round1_transactions =
      static_cast<std::uint32_t>(keys_per_server.size());
  for (const auto& [server, keys] : keys_per_server) {
    cluster_.note_transaction(server);
    stats_.migration.record_transaction_size(keys);
  }
  stats_.migration.add(outcome);
  ++stats_.epochs;
}

}  // namespace rnb
