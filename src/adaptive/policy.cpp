#include "adaptive/policy.hpp"

#include <algorithm>

namespace rnb {

std::vector<ReplicaTarget> AdaptiveReplicationPolicy::plan(
    const SpaceSavingTracker& tracker, const CountMinSketch& sketch,
    std::uint32_t r_min, std::uint32_t r_cap) const {
  r_cap = std::min(r_cap, config_.r_max);
  if (r_cap <= r_min || config_.extra_replica_budget == 0) return {};
  const std::uint32_t cap_extra = r_cap - r_min;

  // Candidates: every tracked heavy hitter, scored by the (aged) sketch
  // estimate. The tracker's own counts are monotone; the sketch follows
  // recent epochs, so a cooling item sheds replicas even while it still
  // occupies a tracker slot. Items whose estimate aged to zero stay in the
  // pool — they earn no proportional share, but a budget larger than the
  // hot head can absorb may still spill replicas onto them.
  struct Candidate {
    ItemId item;
    std::uint64_t freq;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(tracker.size());
  std::uint64_t freq_sum = 0;
  for (const HeavyHitter& hh : tracker.top(tracker.size())) {
    candidates.push_back({hh.item, sketch.estimate(hh.item)});
    freq_sum += candidates.back().freq;
  }
  if (candidates.empty()) return {};
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.freq != b.freq ? a.freq > b.freq : a.item < b.item;
            });

  // Proportional share, floored — never exceeds the budget in aggregate.
  const std::uint64_t budget = config_.extra_replica_budget;
  std::vector<std::uint32_t> extra(candidates.size(), 0);
  std::uint64_t spent = 0;
  for (std::size_t i = 0; i < candidates.size() && freq_sum > 0; ++i) {
    const auto share = static_cast<std::uint64_t>(
        static_cast<__uint128_t>(budget) * candidates[i].freq /
        freq_sum);
    extra[i] = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(share, cap_extra));
    spent += extra[i];
  }
  // Hand the rounding leftover out one replica at a time, hottest first,
  // cycling until the budget is spent or every candidate is capped.
  bool progressed = true;
  while (spent < budget && progressed) {
    progressed = false;
    for (std::size_t i = 0; i < candidates.size() && spent < budget; ++i) {
      if (extra[i] >= cap_extra) continue;
      ++extra[i];
      ++spent;
      progressed = true;
    }
  }

  std::vector<ReplicaTarget> targets;
  targets.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i)
    if (extra[i] > 0) targets.push_back({candidates[i].item, r_min + extra[i]});
  return targets;
}

}  // namespace rnb
