// AdaptiveController — the one object callers wire up.
//
// Data flow per executed request (client -> sketch -> policy -> overlay ->
// rebalancer):
//   1. RnbClient::execute notifies the controller with the request's
//      deduplicated items (RequestObserver hook).
//   2. Each item feeds the count-min sketch (recency-aged frequency) and
//      the Space-Saving tracker (hot candidate set).
//   3. Every epoch_requests requests, the policy maps tracked frequencies
//      to per-item degrees under the replica-memory budget, and the
//      rebalancer materializes/invalidates replicas through the cluster's
//      two-class stores, accounting migration transactions.
//   4. The overlay the controller attached to the cluster serves all
//      subsequent placement lookups, so the very next request plans over
//      the new degrees.
//
// Construction attaches the overlay to the cluster; destruction detaches it
// (the cluster falls back to its base placement). The controller is a pure
// function of (cluster seed, workload seed, AdaptiveConfig::seed).
#pragma once

#include <cstdint>
#include <span>

#include "adaptive/count_min_sketch.hpp"
#include "adaptive/overlay.hpp"
#include "adaptive/policy.hpp"
#include "adaptive/rebalancer.hpp"
#include "adaptive/space_saving.hpp"
#include "cluster/client.hpp"
#include "cluster/cluster.hpp"

namespace rnb {

class AdaptiveController final : public RequestObserver {
 public:
  /// Attaches the overlay to `cluster`; the cluster must outlive the
  /// controller. Pass the controller to RnbClient::set_observer to feed it.
  AdaptiveController(RnbCluster& cluster, const AdaptiveConfig& config);
  ~AdaptiveController() override;

  AdaptiveController(const AdaptiveController&) = delete;
  AdaptiveController& operator=(const AdaptiveController&) = delete;

  /// RequestObserver: feed the sketches; rebalance on epoch boundaries.
  void on_request(std::span<const ItemId> items) override;

  /// Recompute degrees and migrate now, regardless of the epoch counter.
  void rebalance();

  const AdaptiveConfig& config() const noexcept { return config_; }
  PlacementOverlay& overlay() noexcept { return overlay_; }
  const PlacementOverlay& overlay() const noexcept { return overlay_; }
  const CountMinSketch& sketch() const noexcept { return sketch_; }
  const SpaceSavingTracker& tracker() const noexcept { return tracker_; }
  const RebalanceStats& stats() const noexcept {
    return rebalancer_.stats();
  }
  std::uint64_t requests_observed() const noexcept { return requests_; }

 private:
  RnbCluster& cluster_;
  AdaptiveConfig config_;
  CountMinSketch sketch_;
  SpaceSavingTracker tracker_;
  PlacementOverlay overlay_;
  EpochRebalancer rebalancer_;
  AdaptiveReplicationPolicy policy_;
  std::uint64_t requests_ = 0;
};

}  // namespace rnb
