// Seeded count-min sketch over item ids (Cormode & Muthukrishnan 2005).
//
// The adaptive-replication controller needs per-item request frequencies for
// millions of items in bounded memory. A count-min sketch gives an estimate
// that NEVER undercounts (every row only adds), with overestimate bounded by
// e * total / width at probability 1 - e^-depth. Rows hash through the same
// seeded HashFamily as replica placement, so the whole adaptive pipeline is
// a pure function of its seeds.
//
// halve() right-shifts every counter — the standard exponential-decay aging
// trick — so epoch-over-epoch estimates track *recent* popularity instead of
// all-time totals. Halving preserves the overestimate-only property with
// respect to the equally-decayed true counts.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace rnb {

class CountMinSketch {
 public:
  /// `depth` rows of `width` counters; memory is depth * width * 8 bytes.
  CountMinSketch(std::uint32_t depth, std::uint32_t width, std::uint64_t seed);

  /// Record `weight` occurrences of `item`.
  void add(ItemId item, std::uint64_t weight = 1);

  /// Frequency estimate: min over rows; >= the true (decayed) count.
  std::uint64_t estimate(ItemId item) const;

  /// Age every counter by half (floor). Also halves total_weight().
  void halve();

  /// Sum of weights added, subject to the same halving as the counters —
  /// the denominator for frequency shares.
  std::uint64_t total_weight() const noexcept { return total_; }

  std::uint32_t depth() const noexcept { return depth_; }
  std::uint32_t width() const noexcept { return width_; }

 private:
  /// Column of `item` in `row` via Lemire's multiply-shift range reduction
  /// (unbiased enough here and branch-free, unlike `% width`).
  std::uint32_t column(std::uint32_t row, ItemId item) const noexcept {
    const std::uint64_t h = family_(row, item);
    return static_cast<std::uint32_t>(
        (static_cast<__uint128_t>(h) * width_) >> 64);
  }

  std::uint32_t depth_;
  std::uint32_t width_;
  HashFamily family_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> cells_;  // row-major depth_ x width_
};

}  // namespace rnb
