#include "adaptive/count_min_sketch.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace rnb {

CountMinSketch::CountMinSketch(std::uint32_t depth, std::uint32_t width,
                               std::uint64_t seed)
    : depth_(depth), width_(width), family_(seed) {
  RNB_REQUIRE(depth >= 1);
  RNB_REQUIRE(width >= 1);
  cells_.assign(static_cast<std::size_t>(depth_) * width_, 0);
}

void CountMinSketch::add(ItemId item, std::uint64_t weight) {
  for (std::uint32_t row = 0; row < depth_; ++row)
    cells_[static_cast<std::size_t>(row) * width_ + column(row, item)] +=
        weight;
  total_ += weight;
}

std::uint64_t CountMinSketch::estimate(ItemId item) const {
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t row = 0; row < depth_; ++row)
    best = std::min(
        best,
        cells_[static_cast<std::size_t>(row) * width_ + column(row, item)]);
  return best;
}

void CountMinSketch::halve() {
  for (std::uint64_t& cell : cells_) cell >>= 1;
  total_ >>= 1;
}

}  // namespace rnb
