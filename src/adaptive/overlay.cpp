#include "adaptive/overlay.hpp"

#include <algorithm>
#include <span>

#include "common/error.hpp"

namespace rnb {

PlacementOverlay::PlacementOverlay(const PlacementPolicy& base,
                                   std::uint32_t r_max, std::uint64_t seed)
    : base_(base),
      base_degree_(base.replication()),
      r_cap_(std::min<std::uint32_t>(r_max, base.num_servers())),
      family_(seed) {
  RNB_REQUIRE(r_cap_ >= base_degree_);
}

std::uint32_t PlacementOverlay::degree(ItemId item) const {
  const auto it = degrees_.find(item);
  return it == degrees_.end() ? base_degree_ : it->second;
}

void PlacementOverlay::set_degree(ItemId item, std::uint32_t degree) {
  degree = std::clamp(degree, base_degree_, r_cap_);
  const auto it = degrees_.find(item);
  const std::uint32_t old = it == degrees_.end() ? base_degree_ : it->second;
  if (degree == old) return;
  extra_ += degree - base_degree_;
  extra_ -= old - base_degree_;
  if (degree == base_degree_)
    degrees_.erase(it);
  else if (it == degrees_.end())
    degrees_.emplace(item, degree);
  else
    it->second = degree;
}

void PlacementOverlay::locations(ItemId item,
                                 std::vector<ServerId>& out) const {
  locations_with_degree(item, degree(item), out);
}

void PlacementOverlay::locations_with_degree(ItemId item, std::uint32_t degree,
                                             std::vector<ServerId>& out) const {
  degree = std::clamp(degree, base_degree_, r_cap_);
  out.resize(base_degree_);
  base_.replicas(item, std::span<ServerId>(out.data(), base_degree_));
  const ServerId n = base_.num_servers();
  // Extra ranks: bounded pseudo-random probes, then a deterministic sweep
  // so termination never depends on hash luck. The probe index sequence is
  // independent of `degree`, which is what makes rank lists prefix-stable.
  const std::uint64_t probe_limit = 8ull * n + 32;
  std::uint64_t j = 0;
  while (out.size() < degree) {
    ServerId s;
    if (j < probe_limit) {
      s = static_cast<ServerId>(
          (static_cast<__uint128_t>(family_(
               static_cast<std::uint32_t>(j), item)) *
           n) >>
          64);
    } else {
      s = static_cast<ServerId>((j - probe_limit) % n);
    }
    ++j;
    if (std::find(out.begin(), out.end(), s) == out.end()) out.push_back(s);
  }
}

std::vector<ItemId> PlacementOverlay::boosted_ids_sorted() const {
  std::vector<ItemId> ids;
  ids.reserve(degrees_.size());
  for (const auto& [item, d] : degrees_) ids.push_back(item);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace rnb
