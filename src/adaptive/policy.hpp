// Frequency -> replica-degree mapping under a total memory budget.
//
// The paper fixes the replication degree r for every item; its own Zipf and
// social workloads are heavily skewed, so uniform replication spends most of
// its replica memory on items nobody asks for. The adaptive policy instead
// gives each item a logical degree in [r_min, r_max], where r_min is the
// cluster's base placement degree (cold items keep only the distinguished
// copy when r_min == 1) and the sum of extra replicas across all items never
// exceeds `extra_replica_budget` — the same total memory a static-r system
// would spend, concentrated on the hot head of the distribution.
//
// Degrees are proportional to observed frequency: item i with frequency
// share f_i gets floor(budget * f_i) extra replicas, capped at
// r_max - r_min; the rounding leftover is handed out one replica at a time,
// hottest first. The mapping is a pure function of the sketch state, so two
// runs with equal seeds rebalance identically.
#pragma once

#include <cstdint>
#include <vector>

#include "adaptive/count_min_sketch.hpp"
#include "adaptive/space_saving.hpp"
#include "common/types.hpp"

namespace rnb {

/// Tuning knobs for the whole adaptive subsystem (sketches, policy, epochs).
struct AdaptiveConfig {
  /// Per-item degree cap (also clamped to num_servers). The base degree
  /// r_min is the cluster's logical_replicas — the overlay never goes below
  /// the placement the distinguished copies were pinned with.
  std::uint32_t r_max = 8;

  /// Total extra replicas (beyond r_min, fleet-wide) the policy may
  /// materialize. Matching a static-r system's footprint means
  /// (r - r_min) * num_items.
  std::uint64_t extra_replica_budget = 0;

  /// Count-min sketch geometry.
  std::uint32_t sketch_depth = 4;
  std::uint32_t sketch_width = 1u << 14;

  /// Space-Saving counters. 0 = auto-size to the budget:
  /// budget / (r_max - r_min) + 64 counters, so the tracker can always name
  /// enough candidates to spend the whole budget.
  std::uint32_t tracker_capacity = 0;

  /// Requests between rebalances. 0 disables automatic rebalancing (the
  /// controller then only rebalances when explicitly asked).
  std::uint64_t epoch_requests = 2000;

  /// Halve the sketch each epoch so degrees follow recent popularity.
  bool age_sketch = true;

  /// Seed for the sketch hash family and the overlay's extra-replica
  /// placement; independent of the cluster seed.
  std::uint64_t seed = 0xada9717e5eedULL;
};

/// One item's target logical degree, r_min <= degree <= r_cap.
struct ReplicaTarget {
  ItemId item = 0;
  std::uint32_t degree = 0;
};

class AdaptiveReplicationPolicy {
 public:
  explicit AdaptiveReplicationPolicy(const AdaptiveConfig& config)
      : config_(config) {}

  /// Compute target degrees for the tracked heavy hitters. Candidates come
  /// from `tracker` (who is hot), frequencies from `sketch` (how hot,
  /// recency-aged). Only items with degree > r_min are returned, hottest
  /// first; sum(degree - r_min) <= extra_replica_budget is guaranteed.
  std::vector<ReplicaTarget> plan(const SpaceSavingTracker& tracker,
                                  const CountMinSketch& sketch,
                                  std::uint32_t r_min,
                                  std::uint32_t r_cap) const;

  const AdaptiveConfig& config() const noexcept { return config_; }

 private:
  AdaptiveConfig config_;
};

}  // namespace rnb
