#include "adaptive/space_saving.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rnb {

SpaceSavingTracker::SpaceSavingTracker(std::uint32_t capacity)
    : capacity_(capacity) {
  RNB_REQUIRE(capacity >= 1);
  heap_.reserve(capacity);
  pos_.reserve(capacity);
}

void SpaceSavingTracker::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!less(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    pos_[heap_[i].item] = static_cast<std::uint32_t>(i);
    pos_[heap_[parent].item] = static_cast<std::uint32_t>(parent);
    i = parent;
  }
}

void SpaceSavingTracker::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1, r = 2 * i + 2;
    if (l < n && less(heap_[l], heap_[smallest])) smallest = l;
    if (r < n && less(heap_[r], heap_[smallest])) smallest = r;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    pos_[heap_[i].item] = static_cast<std::uint32_t>(i);
    pos_[heap_[smallest].item] = static_cast<std::uint32_t>(smallest);
    i = smallest;
  }
}

void SpaceSavingTracker::add(ItemId item, std::uint64_t weight) {
  total_ += weight;
  if (const auto it = pos_.find(item); it != pos_.end()) {
    // Tracked: counts only grow, so the entry can only move toward leaves.
    heap_[it->second].count += weight;
    sift_down(it->second);
    return;
  }
  if (heap_.size() < capacity_) {
    heap_.push_back({item, weight, 0});
    pos_[item] = static_cast<std::uint32_t>(heap_.size() - 1);
    sift_up(heap_.size() - 1);
    return;
  }
  // Evict the minimum counter: the newcomer inherits its count as error —
  // the classic Space-Saving replacement that keeps the bounds valid.
  HeavyHitter& root = heap_.front();
  pos_.erase(root.item);
  const std::uint64_t floor_count = root.count;
  root = {item, floor_count + weight, floor_count};
  pos_[item] = 0;
  sift_down(0);
}

std::vector<HeavyHitter> SpaceSavingTracker::top(std::size_t k) const {
  std::vector<HeavyHitter> out = heap_;
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              return a.count != b.count ? a.count > b.count : a.item < b.item;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

std::uint64_t SpaceSavingTracker::count_upper_bound(ItemId item) const {
  const auto it = pos_.find(item);
  return it == pos_.end() ? 0 : heap_[it->second].count;
}

}  // namespace rnb
