// Space-Saving heavy-hitter tracking (Metwally, Agrawal & El Abbadi 2005).
//
// The count-min sketch answers "how often was THIS item seen" but cannot
// enumerate the hot set; Space-Saving maintains the candidate set itself:
// `capacity` counters such that any item with true count > total/capacity is
// guaranteed to be tracked, with per-counter bounds
//     count - error <= true count <= count.
// The adaptive policy asks the tracker WHO is hot and the sketch HOW hot
// (the sketch ages epoch-over-epoch; Space-Saving counts are monotone).
//
// Implementation: an indexed binary min-heap keyed on (count, item). All
// three operations — hit, insert, evict-min-and-replace — are O(log k),
// fully deterministic, and allocation-free after construction.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace rnb {

struct HeavyHitter {
  ItemId item = 0;
  std::uint64_t count = 0;  // upper bound on the true count
  std::uint64_t error = 0;  // overestimate inherited from the evicted min
};

class SpaceSavingTracker {
 public:
  explicit SpaceSavingTracker(std::uint32_t capacity);

  /// Record `weight` occurrences of `item`.
  void add(ItemId item, std::uint64_t weight = 1);

  /// Tracked items, hottest first (count desc, item id asc for ties).
  /// `k` caps the result; k >= size() returns everything.
  std::vector<HeavyHitter> top(std::size_t k) const;

  /// Upper-bound count for `item`, 0 when untracked.
  std::uint64_t count_upper_bound(ItemId item) const;

  bool tracked(ItemId item) const { return pos_.contains(item); }
  std::size_t size() const noexcept { return heap_.size(); }
  std::uint32_t capacity() const noexcept { return capacity_; }
  std::uint64_t total_weight() const noexcept { return total_; }

  /// Smallest tracked count — every untracked item's true count is <= this.
  std::uint64_t min_count() const noexcept {
    return heap_.empty() ? 0 : heap_.front().count;
  }

 private:
  bool less(const HeavyHitter& a, const HeavyHitter& b) const noexcept {
    return a.count != b.count ? a.count < b.count : a.item < b.item;
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::uint32_t capacity_;
  std::uint64_t total_ = 0;
  std::vector<HeavyHitter> heap_;
  std::unordered_map<ItemId, std::uint32_t> pos_;  // item -> heap index
};

}  // namespace rnb
