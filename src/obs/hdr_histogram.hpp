// HDR-style log-bucketed histogram with exact quantile error bounds.
//
// The observability subsystem's core data structure: records non-negative
// 64-bit integer values (latencies in nanoseconds, per-request transaction
// counts, bundle sizes) into logarithmically spaced buckets whose relative
// width is bounded by 2^-significant_bits. Unlike the sample-retaining
// Percentiles accumulator it replaces, memory is O(buckets) regardless of
// sample count, merging two histograms is exact (bucket-wise addition, so
// merge is associative and commutative), and every quantile read comes with
// a guaranteed error bound:
//
//     quantile_lower_bound(q)  <=  true q-quantile  <=  quantile(q)
//     quantile(q) <= quantile_lower_bound(q) * (1 + 2^-significant_bits) + 1
//
// Bucket layout (the HdrHistogram scheme, re-derived for unit magnitude 0):
// values below 2^(significant_bits+1) are their own bucket (exact); above
// that, each power-of-two range [2^e, 2^(e+1)) is split into
// 2^significant_bits equal sub-buckets of width 2^(e - significant_bits).
// With the default 7 significant bits the worst-case relative error is
// 2^-7 < 0.8% and the full 64-bit range needs 7,424 buckets (~58 KiB when
// fully dense; storage grows on demand so small-valued histograms stay
// small).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/error.hpp"

namespace rnb::obs {

class Histogram {
 public:
  /// Back-reference from a bucket to a concrete trace: the worst (and, on
  /// ties, most recent) sample the bucket absorbed via record_traced. Lets
  /// a p99 bucket in an exposition link to the stitched trace behind it.
  struct Exemplar {
    std::uint64_t value = 0;
    std::uint64_t trace_id = 0;
  };

  /// `significant_bits` sets the precision/size trade-off: relative bucket
  /// width is 2^-significant_bits, and values below 2^(significant_bits+1)
  /// are recorded exactly. Histograms merge only with equal precision.
  explicit Histogram(unsigned significant_bits = 7)
      : bits_(significant_bits) {
    RNB_REQUIRE(significant_bits >= 1 && significant_bits <= 14);
  }

  unsigned significant_bits() const noexcept { return bits_; }
  /// Worst-case relative half-width of any bucket: 2^-significant_bits.
  double relative_error() const noexcept {
    return 1.0 / static_cast<double>(std::uint64_t{1} << bits_);
  }

  void record(std::uint64_t value, std::uint64_t count = 1);

  /// record() plus exemplar retention: the value's bucket remembers
  /// {value, trace_id} when the value is at least as large as the bucket's
  /// current exemplar (so ties prefer the most recent sample). A zero
  /// trace id degrades to a plain record().
  void record_traced(std::uint64_t value, std::uint64_t trace_id);

  /// The exemplar retained by bucket `index`, or nullptr when the bucket
  /// never absorbed a traced sample.
  const Exemplar* bucket_exemplar(std::size_t index) const noexcept;
  /// True when any bucket holds an exemplar.
  bool has_exemplars() const noexcept { return !exemplars_.empty(); }

  std::uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  /// Exact extrema and sum of recorded values (tracked outside the buckets,
  /// so min()/max()/mean() carry no bucketing error).
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return count_ ? max_ : 0; }
  std::uint64_t sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Upper bound for the q-quantile (q in [0, 1]): the highest value that
  /// could be at rank ceil(q * count). quantile(0) == min(), quantile(1)
  /// == max(), and reads are monotone in q. Returns 0 on an empty
  /// histogram.
  std::uint64_t quantile(double q) const;
  /// Matching lower bound: the smallest value the same bucket could hold.
  std::uint64_t quantile_lower_bound(double q) const;

  /// Merge another histogram (bucket-wise addition; exact, associative).
  /// Both histograms must share the same significant_bits.
  void merge(const Histogram& other);

  /// Bucket index for a value — exposed for boundary tests.
  std::size_t bucket_index(std::uint64_t value) const noexcept;
  /// Smallest / largest value mapping to bucket `index`.
  std::uint64_t bucket_lower(std::size_t index) const noexcept;
  std::uint64_t bucket_upper(std::size_t index) const noexcept;

  struct Bucket {
    std::uint64_t lower = 0;  // smallest value in the bucket
    std::uint64_t upper = 0;  // largest value in the bucket
    std::uint64_t count = 0;
    std::size_t index = 0;  // bucket index (for bucket_exemplar lookups)
  };

  /// Visit non-empty buckets in ascending value order.
  template <typename Fn>
  void for_each_bucket(Fn&& fn) const {
    for (std::size_t i = 0; i < counts_.size(); ++i)
      if (counts_[i] != 0)
        fn(Bucket{bucket_lower(i), bucket_upper(i), counts_[i], i});
  }

 private:
  std::size_t index_for_rank(std::uint64_t rank) const noexcept;

  unsigned bits_;
  std::vector<std::uint64_t> counts_;  // grown on demand
  // Sparse: only buckets that absorbed traced samples, which in practice
  // is a handful even for million-sample histograms.
  std::map<std::size_t, Exemplar> exemplars_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace rnb::obs
