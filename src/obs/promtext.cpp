#include "obs/promtext.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <ostream>

#include "obs/metrics.hpp"

namespace rnb::obs {

void write_prom_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << (v > 0 ? "+Inf" : (v < 0 ? "-Inf" : "NaN"));
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

std::string unescape_label_value(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    const char c = escaped[i];
    if (c != '\\' || i + 1 == escaped.size()) {
      out += c;
      continue;
    }
    const char next = escaped[++i];
    switch (next) {
      case '\\': out += '\\'; break;
      case '"': out += '"'; break;
      case 'n': out += '\n'; break;
      default:
        // Unknown escape: keep both bytes (reference-parser behaviour);
        // the writer never produces these, so round trips are unaffected.
        out += '\\';
        out += next;
    }
  }
  return out;
}

std::string unescape_help(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    const char c = escaped[i];
    if (c != '\\' || i + 1 == escaped.size()) {
      out += c;
      continue;
    }
    const char next = escaped[++i];
    if (next == '\\') {
      out += '\\';
    } else if (next == 'n') {
      out += '\n';
    } else {
      out += '\\';
      out += next;
    }
  }
  return out;
}

const std::string* PromSample::label(std::string_view key) const noexcept {
  for (const PromLabel& l : labels)
    if (l.key == key) return &l.value;
  return nullptr;
}

std::string PromSample::label_body(std::string_view skip_key) const {
  std::string out;
  for (const PromLabel& l : labels) {
    if (!skip_key.empty() && l.key == skip_key) continue;
    if (!out.empty()) out += ',';
    out += format_label(l.key, l.value);
  }
  return out;
}

const PromSample* PromFamily::sample(std::string_view sample_name,
                                     std::string_view label_body) const {
  for (const PromSample& s : samples) {
    if (s.name != sample_name) continue;
    if (s.label_body() == label_body) return &s;
  }
  return nullptr;
}

const PromFamily* PromScrape::family(std::string_view name) const noexcept {
  for (const PromFamily& fam : families)
    if (fam.name == name) return &fam;
  return nullptr;
}

const PromSample* PromScrape::find(
    std::string_view sample_name) const noexcept {
  for (const PromFamily& fam : families)
    for (const PromSample& s : fam.samples)
      if (s.name == sample_name) return &s;
  return nullptr;
}

double PromScrape::value_or(std::string_view sample_name,
                            double fallback) const {
  const PromSample* s = find(sample_name);
  return s == nullptr ? fallback : s->value;
}

namespace {

bool fail(std::string* error, std::size_t line_no, const std::string& what) {
  if (error != nullptr)
    *error = "line " + std::to_string(line_no + 1) + ": " + what;
  return false;
}

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    if (!alpha && !(i > 0 && c >= '0' && c <= '9')) return false;
  }
  return true;
}

/// Parse one numeric token as the writer emits them: integers (counters,
/// bucket counts), %.17g doubles, or the +Inf/-Inf/NaN sentinels.
bool parse_value_token(std::string_view token, double& out) {
  if (token == "+Inf" || token == "Inf") {
    out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "-Inf") {
    out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "NaN") {
    out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  if (token.empty()) return false;
  const std::string buf(token);  // strtod needs a terminator
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

/// Parse a quote-aware label body (the text between '{' and '}').
/// Returns false on syntax errors. The body may be empty.
bool parse_label_body(std::string_view body, std::vector<PromLabel>& out) {
  std::size_t pos = 0;
  while (pos < body.size()) {
    // key
    const std::size_t eq = body.find('=', pos);
    if (eq == std::string_view::npos) return false;
    PromLabel label;
    label.key = std::string(body.substr(pos, eq - pos));
    if (!valid_metric_name(label.key)) return false;
    pos = eq + 1;
    if (pos >= body.size() || body[pos] != '"') return false;
    ++pos;
    // quoted value: scan for the closing quote, honouring escapes
    std::string escaped;
    while (pos < body.size() && body[pos] != '"') {
      if (body[pos] == '\\') {
        if (pos + 1 >= body.size()) return false;
        escaped += body[pos];
        escaped += body[pos + 1];
        pos += 2;
      } else {
        escaped += body[pos];
        ++pos;
      }
    }
    if (pos >= body.size()) return false;  // unterminated quote
    ++pos;                                 // closing quote
    label.value = unescape_label_value(escaped);
    out.push_back(std::move(label));
    if (pos < body.size()) {
      if (body[pos] != ',') return false;
      ++pos;
      if (pos == body.size()) return false;  // trailing comma
    }
  }
  return true;
}

/// Find the '}' terminating a label body that starts after `open` (the
/// index of '{'), honouring quoted strings and escapes. npos on error.
std::size_t find_body_end(std::string_view line, std::size_t open) {
  bool in_quotes = false;
  for (std::size_t i = open + 1; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '\\') {
        ++i;  // skip the escaped byte
      } else if (c == '"') {
        in_quotes = false;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == '}') {
      return i;
    }
  }
  return std::string_view::npos;
}

PromFamily& family_for_sample(PromScrape& scrape, std::string_view name) {
  // Exact-name family first (counters, gauges, a histogram's own name
  // never appears as a sample so no ambiguity), then the histogram base
  // for _bucket/_sum/_count samples.
  for (PromFamily& fam : scrape.families)
    if (fam.name == name) return fam;
  for (const std::string_view suffix :
       {std::string_view("_bucket"), std::string_view("_sum"),
        std::string_view("_count")}) {
    if (name.size() <= suffix.size() || !name.ends_with(suffix)) continue;
    const std::string_view base =
        name.substr(0, name.size() - suffix.size());
    for (PromFamily& fam : scrape.families)
      if (fam.name == base && fam.kind == PromKind::kHistogram) return fam;
  }
  // No HELP/TYPE preceded this sample: synthesize an untyped family.
  scrape.families.push_back(PromFamily{std::string(name), "",
                                       PromKind::kUntyped, {}});
  return scrape.families.back();
}

PromFamily& family_named(PromScrape& scrape, std::string_view name) {
  for (PromFamily& fam : scrape.families)
    if (fam.name == name) return fam;
  scrape.families.push_back(
      PromFamily{std::string(name), "", PromKind::kUntyped, {}});
  return scrape.families.back();
}

}  // namespace

bool parse_prometheus(std::string_view text, PromScrape& out,
                      std::string* error) {
  out.families.clear();
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    const std::size_t this_line = line_no++;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // "# HELP name text", "# TYPE name kind", or a plain comment.
      if (line.starts_with("# HELP ")) {
        const std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        const std::string_view name =
            sp == std::string_view::npos ? rest : rest.substr(0, sp);
        if (!valid_metric_name(name))
          return fail(error, this_line, "bad HELP metric name");
        PromFamily& fam = family_named(out, name);
        fam.help = unescape_help(
            sp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(sp + 1));
      } else if (line.starts_with("# TYPE ")) {
        const std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos)
          return fail(error, this_line, "TYPE line without a type");
        const std::string_view name = rest.substr(0, sp);
        if (!valid_metric_name(name))
          return fail(error, this_line, "bad TYPE metric name");
        const std::string_view kind = rest.substr(sp + 1);
        PromFamily& fam = family_named(out, name);
        if (kind == "counter")
          fam.kind = PromKind::kCounter;
        else if (kind == "gauge")
          fam.kind = PromKind::kGauge;
        else if (kind == "histogram")
          fam.kind = PromKind::kHistogram;
        else
          fam.kind = PromKind::kUntyped;  // tolerate kinds we postdate
      }
      continue;  // other comments are skippable
    }

    PromSample sample;
    std::size_t cursor;
    const std::size_t open = line.find_first_of("{ ");
    if (open == std::string_view::npos)
      return fail(error, this_line, "sample line without a value");
    sample.name = std::string(line.substr(0, open));
    if (!valid_metric_name(sample.name))
      return fail(error, this_line, "bad sample metric name");
    if (line[open] == '{') {
      const std::size_t close = find_body_end(line, open);
      if (close == std::string_view::npos)
        return fail(error, this_line, "unterminated label body");
      if (!parse_label_body(line.substr(open + 1, close - open - 1),
                            sample.labels))
        return fail(error, this_line, "malformed label body");
      cursor = close + 1;
      if (cursor >= line.size() || line[cursor] != ' ')
        return fail(error, this_line, "missing value after labels");
      ++cursor;
    } else {
      cursor = open + 1;
    }

    std::string_view tail = line.substr(cursor);
    const std::size_t value_end = tail.find(' ');
    const std::string_view value_token =
        value_end == std::string_view::npos ? tail : tail.substr(0, value_end);
    if (!parse_value_token(value_token, sample.value))
      return fail(error, this_line, "non-numeric sample value");
    sample.value_text = std::string(value_token);

    if (value_end != std::string_view::npos) {
      // The only post-value decoration the writer emits: an OpenMetrics
      // exemplar `# {trace_id="hex"} value`.
      const std::string_view rest = tail.substr(value_end);
      constexpr std::string_view kPrefix = " # {trace_id=\"";
      if (!rest.starts_with(kPrefix))
        return fail(error, this_line, "unrecognized text after value");
      const std::size_t id_start = kPrefix.size();
      const std::size_t id_end = rest.find('"', id_start);
      if (id_end == std::string_view::npos ||
          !rest.substr(id_end).starts_with("\"} "))
        return fail(error, this_line, "malformed exemplar");
      const std::string hex(rest.substr(id_start, id_end - id_start));
      char* end = nullptr;
      sample.exemplar_trace_id = std::strtoull(hex.c_str(), &end, 16);
      if (hex.empty() || end != hex.c_str() + hex.size())
        return fail(error, this_line, "bad exemplar trace id");
      const std::string_view ex_value = rest.substr(id_end + 3);
      if (!parse_value_token(ex_value, sample.exemplar_value))
        return fail(error, this_line, "non-numeric exemplar value");
      sample.exemplar_value_text = std::string(ex_value);
      sample.has_exemplar = true;
    }

    family_for_sample(out, sample.name).samples.push_back(std::move(sample));
  }
  return true;
}

void write_prometheus(const PromScrape& scrape, std::ostream& os) {
  for (const PromFamily& fam : scrape.families) {
    os << "# HELP " << fam.name << ' ';
    for (const char c : fam.help) {
      if (c == '\\')
        os << "\\\\";
      else if (c == '\n')
        os << "\\n";
      else
        os << c;
    }
    os << '\n';
    os << "# TYPE " << fam.name << ' ';
    switch (fam.kind) {
      case PromKind::kCounter: os << "counter"; break;
      case PromKind::kGauge: os << "gauge"; break;
      case PromKind::kHistogram: os << "histogram"; break;
      case PromKind::kUntyped: os << "untyped"; break;
    }
    os << '\n';
    for (const PromSample& s : fam.samples) {
      os << s.name;
      if (!s.labels.empty()) os << '{' << s.label_body() << '}';
      os << ' ' << s.value_text;
      if (s.has_exemplar) {
        os << " # {trace_id=\"";
        char buf[17];
        std::size_t n = 0;
        std::uint64_t id = s.exemplar_trace_id;
        do {
          buf[n++] = "0123456789abcdef"[id & 0xf];
          id >>= 4;
        } while (id != 0);
        while (n != 0) os << buf[--n];
        os << "\"} " << s.exemplar_value_text;
      }
      os << '\n';
    }
  }
}

std::optional<Histogram> assemble_histogram(const PromFamily& fam,
                                            const std::string& label_body,
                                            double scale,
                                            unsigned significant_bits) {
  const std::string bucket_name = fam.name + "_bucket";
  Histogram out(significant_bits);
  bool matched = false;
  std::uint64_t previous = 0;
  std::uint64_t last_finite_upper = 0;
  std::uint64_t inf_count = 0;
  for (const PromSample& s : fam.samples) {
    if (s.name != bucket_name) continue;
    const std::string* le = s.label("le");
    if (le == nullptr || s.label_body("le") != label_body) continue;
    matched = true;
    const auto cumulative = static_cast<std::uint64_t>(s.value);
    if (cumulative < previous) return std::nullopt;  // not cumulative
    if (*le == "+Inf") {
      inf_count = cumulative;
      continue;
    }
    double upper_exposed = 0.0;
    if (!parse_value_token(*le, upper_exposed)) return std::nullopt;
    const auto upper = static_cast<std::uint64_t>(
        std::llround(upper_exposed * scale));
    out.record(upper, cumulative - previous);
    previous = cumulative;
    last_finite_upper = upper;
  }
  if (!matched) return std::nullopt;
  // The registry writes every non-empty bucket, so the +Inf delta is zero
  // on its output; a foreign exposition may truncate buckets — place the
  // overflow at the last known bound (best effort, count-preserving).
  if (inf_count > previous && last_finite_upper != 0)
    out.record(last_finite_upper, inf_count - previous);
  return out;
}

}  // namespace rnb::obs
