// Lock-contention observability: a shared_mutex that counts itself.
//
// The sharded kv serving path replaces the old global dispatch mutex with
// one striped InstrumentedSharedMutex per shard. Whether that actually
// bought parallelism is an empirical question — a shard count mismatched to
// the key distribution just moves the convoy — so the lock itself records
// how often it was taken and how often the taker had to wait. Counters are
// relaxed atomics (the lock acquisition that follows provides all the
// ordering anyone needs) and snapshots merge associatively, the same
// contract as obs::Histogram::merge, so per-shard numbers roll up into
// per-server and per-fleet totals without coordination.
//
// "Contended" is detected by a try-lock-first acquisition: if the fast path
// fails we count one contended acquisition and fall back to the blocking
// path. try_lock is allowed to fail spuriously, so the count is a slight
// over-estimate under load — fine for a signal whose job is "is this shard
// a convoy", not an exact wait-time integral.
#pragma once

#include <atomic>
#include <cstdint>
#include <shared_mutex>

namespace rnb::obs {

/// Point-in-time counter values; plain integers so snapshots can be
/// compared, diffed, and merged (operator+ is associative & commutative).
struct ContentionSnapshot {
  std::uint64_t shared_acquisitions = 0;
  std::uint64_t exclusive_acquisitions = 0;
  std::uint64_t contended_acquisitions = 0;

  std::uint64_t total_acquisitions() const noexcept {
    return shared_acquisitions + exclusive_acquisitions;
  }

  ContentionSnapshot& operator+=(const ContentionSnapshot& other) noexcept {
    shared_acquisitions += other.shared_acquisitions;
    exclusive_acquisitions += other.exclusive_acquisitions;
    contended_acquisitions += other.contended_acquisitions;
    return *this;
  }
  friend ContentionSnapshot operator+(ContentionSnapshot a,
                                      const ContentionSnapshot& b) noexcept {
    return a += b;
  }
};

/// std::shared_mutex plus acquisition/contention counters. Satisfies the
/// SharedLockable requirements, so std::shared_lock / std::unique_lock /
/// std::scoped_lock all work on it directly.
class InstrumentedSharedMutex {
 public:
  void lock() {
    if (!mu_.try_lock()) {
      contended_.fetch_add(1, std::memory_order_relaxed);
      mu_.lock();
    }
    exclusive_.fetch_add(1, std::memory_order_relaxed);
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    exclusive_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  void unlock() { mu_.unlock(); }

  void lock_shared() {
    if (!mu_.try_lock_shared()) {
      contended_.fetch_add(1, std::memory_order_relaxed);
      mu_.lock_shared();
    }
    shared_.fetch_add(1, std::memory_order_relaxed);
  }
  bool try_lock_shared() {
    if (!mu_.try_lock_shared()) return false;
    shared_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  void unlock_shared() { mu_.unlock_shared(); }

  ContentionSnapshot counters() const noexcept {
    return {shared_.load(std::memory_order_relaxed),
            exclusive_.load(std::memory_order_relaxed),
            contended_.load(std::memory_order_relaxed)};
  }

 private:
  std::shared_mutex mu_;
  std::atomic<std::uint64_t> shared_{0};
  std::atomic<std::uint64_t> exclusive_{0};
  std::atomic<std::uint64_t> contended_{0};
};

}  // namespace rnb::obs
