// Fixed-capacity time series: the flight-recorder storage layer.
//
// A TimeSeries is a ring of (timestamp, value) samples — the last K
// observations of one scraped metric. Appends are O(1), old samples fall
// off the back, and the counter views (delta / rate) handle resets the
// way Prometheus `rate()` does: a value drop restarts the base at zero,
// so a server restart reads as a small positive increment rather than a
// huge negative one.
//
// Timestamps are caller-supplied microseconds — the collector passes
// virtual time under the sim clock seam and steady-clock-since-start in
// wall mode, so identical scrape schedules produce identical series and
// the flight-recorder JSON diff-checks across runs.
//
// SeriesStore maps series keys to rings in insertion order (same
// determinism discipline as MetricsRegistry): iteration order, and hence
// every dump built from it, depends only on the order keys first appear.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace rnb::obs {

struct TsSample {
  std::uint64_t t_us = 0;
  double value = 0.0;
};

class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity) : capacity_(capacity) {
    RNB_REQUIRE(capacity_ > 0);
  }

  void append(std::uint64_t t_us, double value) {
    if (ring_.size() < capacity_) {
      ring_.push_back({t_us, value});
    } else {
      ring_[head_] = {t_us, value};
      head_ = (head_ + 1) % capacity_;
    }
    ++appended_;
  }

  std::size_t size() const noexcept { return ring_.size(); }
  bool empty() const noexcept { return ring_.empty(); }
  std::size_t capacity() const noexcept { return capacity_; }
  /// Total appends ever (retained + fallen off the back).
  std::uint64_t appended() const noexcept { return appended_; }

  /// Sample `i`, oldest first (0 .. size()-1).
  const TsSample& at(std::size_t i) const {
    RNB_REQUIRE(i < ring_.size());
    return ring_[(head_ + i) % ring_.size()];
  }
  const TsSample& front() const { return at(0); }
  const TsSample& back() const { return at(ring_.size() - 1); }
  /// Latest value, or 0 when empty.
  double last() const noexcept {
    return ring_.empty() ? 0.0 : at(ring_.size() - 1).value;
  }

  /// Counter increase across the retained window, reset-aware: negative
  /// steps contribute the post-reset value (the counter restarted at 0).
  double delta() const noexcept {
    double total = 0.0;
    for (std::size_t i = 1; i < ring_.size(); ++i) {
      const double step = at(i).value - at(i - 1).value;
      total += step >= 0.0 ? step : at(i).value;
    }
    return total;
  }

  /// delta() per second over the retained window; 0 with <2 samples.
  double rate_per_s() const noexcept {
    if (ring_.size() < 2) return 0.0;
    const std::uint64_t elapsed = back().t_us - front().t_us;
    return elapsed == 0 ? 0.0 : delta() / (static_cast<double>(elapsed) / 1e6);
  }

  /// Increase between the last two samples only (reset-aware).
  double delta_last() const noexcept {
    if (ring_.size() < 2) return 0.0;
    const double step = back().value - at(ring_.size() - 2).value;
    return step >= 0.0 ? step : back().value;
  }

  /// delta_last() per second over the last sampling interval.
  double rate_last_per_s() const noexcept {
    if (ring_.size() < 2) return 0.0;
    const std::uint64_t elapsed = back().t_us - at(ring_.size() - 2).t_us;
    return elapsed == 0
               ? 0.0
               : delta_last() / (static_cast<double>(elapsed) / 1e6);
  }

 private:
  std::size_t capacity_;
  std::vector<TsSample> ring_;
  std::size_t head_ = 0;  // index of the oldest sample once full
  std::uint64_t appended_ = 0;
};

/// Keyed ring buffers in first-appearance order. deque-backed so series
/// references stay stable as new keys arrive (the index map's string_view
/// keys point into the stored strings for the same reason).
class SeriesStore {
 public:
  explicit SeriesStore(std::size_t samples_per_series)
      : samples_per_series_(samples_per_series) {
    RNB_REQUIRE(samples_per_series_ > 0);
  }

  SeriesStore(const SeriesStore&) = delete;
  SeriesStore& operator=(const SeriesStore&) = delete;

  std::size_t size() const noexcept { return series_.size(); }
  std::size_t samples_per_series() const noexcept {
    return samples_per_series_;
  }

  /// Get or create the ring for `key`.
  TimeSeries& series(std::string_view key) {
    const auto it = index_.find(key);
    if (it != index_.end()) return series_[it->second].second;
    series_.emplace_back(std::string(key), TimeSeries(samples_per_series_));
    index_.emplace(series_.back().first, series_.size() - 1);
    return series_.back().second;
  }

  const TimeSeries* find(std::string_view key) const noexcept {
    const auto it = index_.find(key);
    return it == index_.end() ? nullptr : &series_[it->second].second;
  }

  /// fn(key, series) in first-appearance order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, ts] : series_) fn(key, ts);
  }

 private:
  struct ViewHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct ViewEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  std::size_t samples_per_series_;
  std::deque<std::pair<std::string, TimeSeries>> series_;
  std::unordered_map<std::string_view, std::size_t, ViewHash, ViewEq> index_;
};

}  // namespace rnb::obs
