#include "obs/slow_log.hpp"

#include <algorithm>
#include <map>
#include <ostream>

#include "obs/trace.hpp"

namespace rnb::obs {

SlowLog* SlowLog::current_ = nullptr;

namespace {

// Heap "less": the root under this ordering is the entry the next
// admission evicts — the cheapest retained request, ties broken toward
// the most recently admitted.
bool evicts_later(const SlowRequest& a, const SlowRequest& b) {
  if (a.cost != b.cost) return a.cost > b.cost;
  return a.seq < b.seq;
}

void write_request_fields(std::ostream& os, const SlowRequest& r) {
  os << "\"trace_id\":";
  write_hex_id(os, r.trace_id);
  os << ",\"cost\":" << r.cost << ",\"items\":" << r.items
     << ",\"transactions\":" << r.transactions << ",\"waves\":" << r.waves
     << ",\"hitchhikes\":" << r.hitchhikes << ",\"retries\":" << r.retries
     << ",\"servers\":" << r.servers << ",\"deadline_missed\":"
     << (r.deadline_missed ? "true" : "false");
  // Emitted only when set, so pre-elastic recordings serialize unchanged.
  if (r.epoch != 0) os << ",\"epoch\":" << r.epoch;
  if (r.engine != nullptr) {
    os << ",\"engine\":";
    write_json_string(os, r.engine);
  }
}

void write_span_tree(
    std::ostream& os, const TraceEvent& e,
    const std::map<std::uint64_t, std::vector<const TraceEvent*>>& children) {
  os << "{\"name\":";
  write_json_string(os, e.name == nullptr ? "?" : e.name);
  os << ",\"cat\":";
  write_json_string(os, e.cat == nullptr ? "?" : e.cat);
  os << ",\"ph\":\"" << e.phase << "\",\"ts\":" << e.ts;
  if (e.phase == 'X') os << ",\"dur\":" << e.dur;
  os << ",\"span_id\":";
  write_hex_id(os, e.span_id);
  for (std::uint32_t a = 0; a < e.num_args; ++a) {
    os << ',';
    write_json_string(os, e.args[a].key == nullptr ? "?" : e.args[a].key);
    os << ':' << e.args[a].value;
  }
  if (e.note_key != nullptr) {
    os << ',';
    write_json_string(os, e.note_key);
    os << ':';
    write_json_string(os, e.note_value == nullptr ? "?" : e.note_value);
  }
  const auto kids = children.find(e.span_id);
  if (kids != children.end()) {
    os << ",\"children\":[";
    for (std::size_t i = 0; i < kids->second.size(); ++i) {
      if (i != 0) os << ',';
      write_span_tree(os, *kids->second[i], children);
    }
    os << ']';
  }
  os << '}';
}

}  // namespace

SlowLog::SlowLog(std::size_t capacity, std::uint64_t threshold)
    : capacity_(capacity), threshold_(threshold) {
  heap_.reserve(capacity_);
}

SlowLog::~SlowLog() {
  if (current_ == this) current_ = nullptr;
}

void SlowLog::record(SlowRequest request) {
  considered_.fetch_add(1, std::memory_order_relaxed);
  if (capacity_ == 0) return;
  if (threshold_ != 0 && request.cost < threshold_) return;
  // Once the log is full the floor only rises, so a stale read can only
  // send us to the mutex unnecessarily — never wrongly reject.
  if (admissions_.load(std::memory_order_relaxed) >= capacity_ &&
      request.cost <= floor_.load(std::memory_order_relaxed))
    return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (heap_.size() == capacity_ && request.cost <= heap_.front().cost)
    return;
  request.seq = admissions_.fetch_add(1, std::memory_order_relaxed);
  heap_.push_back(request);
  std::push_heap(heap_.begin(), heap_.end(), evicts_later);
  if (heap_.size() > capacity_) {
    std::pop_heap(heap_.begin(), heap_.end(), evicts_later);
    heap_.pop_back();
  }
  if (heap_.size() == capacity_)
    floor_.store(heap_.front().cost, std::memory_order_relaxed);
}

std::vector<SlowRequest> SlowLog::top() const {
  std::vector<SlowRequest> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = heap_;
  }
  std::sort(out.begin(), out.end(),
            [](const SlowRequest& a, const SlowRequest& b) {
              if (a.cost != b.cost) return a.cost > b.cost;
              return a.seq < b.seq;
            });
  return out;
}

void SlowLog::write_text(std::ostream& os) const {
  const std::vector<SlowRequest> requests = top();
  os << "slow-request log: " << requests.size() << " retained of "
     << considered() << " considered (capacity " << capacity_;
  if (threshold_ != 0) os << ", threshold " << threshold_;
  os << ")\n";
  std::size_t rank = 0;
  for (const SlowRequest& r : requests) {
    os << "  #" << rank++ << " trace=";
    write_hex_id(os, r.trace_id);
    os << " cost=" << r.cost << " items=" << r.items
       << " txns=" << r.transactions << " waves=" << r.waves
       << " hitchhikes=" << r.hitchhikes << " retries=" << r.retries
       << " servers=" << r.servers;
    if (r.epoch != 0) os << " epoch=" << r.epoch;
    if (r.engine != nullptr) os << " engine=" << r.engine;
    os << (r.deadline_missed ? " deadline_missed" : "") << '\n';
  }
}

void SlowLog::write_json(std::ostream& os, const Tracer* tracer) const {
  const std::vector<SlowRequest> requests = top();
  std::vector<TraceEvent> events;
  if (tracer != nullptr) events = tracer->snapshot_events();

  os << "{\"considered\":" << considered() << ",\"capacity\":" << capacity_
     << ",\"slow_requests\":[";
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const SlowRequest& r = requests[i];
    os << (i == 0 ? "\n" : ",\n") << '{';
    write_request_fields(os, r);
    if (tracer != nullptr) {
      // Join the trace by id and nest spans by parent span id; children
      // stay in record order (events arrive seq-sorted). A span whose
      // parent did not survive ring wraparound surfaces as an extra root
      // rather than disappearing.
      std::vector<const TraceEvent*> trace_events;
      std::map<std::uint64_t, std::vector<const TraceEvent*>> children;
      for (const TraceEvent& e : events) {
        if (e.trace_id != r.trace_id) continue;
        trace_events.push_back(&e);
        if (e.parent_id != 0) children[e.parent_id].push_back(&e);
      }
      os << ",\"spans\":[";
      bool first = true;
      for (const TraceEvent* e : trace_events) {
        const bool parent_present =
            e->parent_id != 0 &&
            std::any_of(trace_events.begin(), trace_events.end(),
                        [&](const TraceEvent* p) {
                          return p->span_id == e->parent_id;
                        });
        if (parent_present) continue;  // reached via its parent
        if (!first) os << ',';
        first = false;
        write_span_tree(os, *e, children);
      }
      os << ']';
    }
    os << '}';
  }
  os << (requests.empty() ? "]" : "\n]") << "}\n";
}

}  // namespace rnb::obs
