// Prometheus text-exposition parser: the scrape-side twin of
// MetricsRegistry::write_prometheus (text/plain version 0.0.4).
//
// The serving tier's `stats` verb answers with exactly the exposition the
// registry writes — HELP/TYPE comments, label bodies built by
// format_label, cumulative histogram buckets with optional OpenMetrics
// exemplars. This parser turns that text back into structured families so
// a collector can diff counters, merge histograms, and watch gauges over
// time without a Prometheus server in the loop.
//
// Loss-free contract (pinned by the promtext round-trip fuzz): for any
// text a MetricsRegistry writes, parse_prometheus + write_prometheus
// reproduce the input byte for byte. Two properties make that hold:
//
//   * label values round-trip through unescape_label_value /
//     escape_label_value (the writer's escaping is canonical — every
//     byte not in {\, ", \n} is emitted raw — so re-escaping the parsed
//     value regenerates the original body exactly),
//   * every sample keeps the raw numeric token it was parsed from
//     (`value_text`), because the writer formats counters as integers and
//     gauges via %.17g — re-formatting a parsed double cannot distinguish
//     the two, and uint64 counters above 2^53 do not survive a double
//     round trip at all.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/hdr_histogram.hpp"

namespace rnb::obs {

/// Deterministic %.17g double formatting shared by the metrics writer and
/// every JSON/text dump in the telemetry plane (non-finite values emit
/// +Inf / -Inf / NaN tokens).
void write_prom_double(std::ostream& os, double v);

/// Inverse of escape_label_value: \\ -> backslash, \" -> quote, \n ->
/// newline. An unknown escape (backslash followed by anything else) keeps
/// both bytes — the Prometheus reference parser does the same, and it
/// keeps unescape total so a round trip never loses input.
std::string unescape_label_value(std::string_view escaped);

/// Inverse of the writer's HELP escaping (backslash and newline only).
std::string unescape_help(std::string_view escaped);

enum class PromKind { kUntyped, kCounter, kGauge, kHistogram };

struct PromLabel {
  std::string key;
  std::string value;  // unescaped
};

/// One sample line. For histograms the name carries the _bucket/_sum/
/// _count suffix and bucket samples keep their `le` label like any other.
struct PromSample {
  std::string name;
  std::vector<PromLabel> labels;
  double value = 0.0;
  std::string value_text;  // raw token, for loss-free re-serialization
  bool has_exemplar = false;
  std::uint64_t exemplar_trace_id = 0;
  double exemplar_value = 0.0;
  std::string exemplar_value_text;

  /// The value of label `key`, or nullptr when absent.
  const std::string* label(std::string_view key) const noexcept;
  /// Canonical re-escaped label body (format_label pairs joined by ','),
  /// optionally skipping one label key (histogram grouping drops `le`).
  std::string label_body(std::string_view skip_key = {}) const;
};

struct PromFamily {
  std::string name;
  std::string help;  // unescaped
  PromKind kind = PromKind::kUntyped;
  std::vector<PromSample> samples;

  const PromSample* sample(std::string_view sample_name,
                           std::string_view label_body = {}) const;
};

/// One parsed exposition, families in input order.
struct PromScrape {
  std::vector<PromFamily> families;

  const PromFamily* family(std::string_view name) const noexcept;
  /// First sample with this exact name anywhere in the scrape (histogram
  /// sample names include their suffix), or nullptr.
  const PromSample* find(std::string_view sample_name) const noexcept;
  /// Value of the first `sample_name` sample, or `fallback` when absent.
  double value_or(std::string_view sample_name, double fallback) const;
};

/// Parse a 0.0.4 exposition. Returns false (and sets *error when given)
/// on malformed input: bad HELP/TYPE syntax, an unterminated label body,
/// a non-numeric value token. Unknown TYPE strings parse as untyped
/// rather than failing — a scrape must tolerate families it postdates.
bool parse_prometheus(std::string_view text, PromScrape& out,
                      std::string* error = nullptr);

/// Re-serialize exactly as MetricsRegistry::write_prometheus would:
/// HELP/TYPE per family, canonical label escaping, raw value tokens,
/// exemplar suffixes. parse + write is byte-identity on registry output.
void write_prometheus(const PromScrape& scrape, std::ostream& os);

/// Reassemble an HDR histogram from `fam`'s cumulative `_bucket` samples
/// whose labels minus `le` re-serialize to `label_body`. Each bucket's
/// de-cumulated count is recorded at its upper bound in *recorded* units
/// (`le` text times `scale` — the inverse of the registry's exposition
/// scale), which reproduces the source histogram's bucket counts exactly:
/// quantile reads on the result equal the source's wherever they depend
/// only on bucket counts (always, for bucket-exact recorded values).
/// Returns nullopt when the family has no matching bucket samples or a
/// bucket count decreases (not a cumulative histogram).
std::optional<Histogram> assemble_histogram(const PromFamily& fam,
                                            const std::string& label_body,
                                            double scale,
                                            unsigned significant_bits = 7);

}  // namespace rnb::obs
