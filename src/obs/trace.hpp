// Structured request tracing: spans, per-thread ring buffers, Chrome JSON.
//
// Design constraints, in order:
//
//   1. Zero overhead when disabled. Instrumentation sites construct a
//      SpanScope; when no tracer is installed that is one static pointer
//      load and a branch — no allocation, no clock read, no atomics.
//   2. Deterministic in the simulation stack. Timestamps come from the
//      tracer's clock, which in kVirtual mode is a counter advanced by the
//      simulator (one tick per event, re-based per request), so two runs
//      with the same seed produce byte-identical exports. kWall mode reads
//      the steady clock for the real kv stack.
//   3. Lock-free on the hot path. Each thread records into its own
//      fixed-capacity ring buffer (single producer, wraparound overwrites
//      the oldest events); the only cross-thread state is a relaxed
//      sequence counter that provides a deterministic total order for
//      export. Ring registration (first event of a thread) takes a mutex.
//
// Span taxonomy used by the instrumentation seams (docs/ARCHITECTURE.md):
//   request > cover | wave{round1,recover,round2} > transaction > retry
// with fault decisions (drops, crashes, restores, hedges) attached as
// annotations or instant events.
//
// Event names, categories, and annotation strings MUST be string literals
// (or otherwise outlive the tracer): events store the pointers, never
// copies, to keep recording allocation-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

namespace rnb::obs {

/// Deterministic JSON string escaping shared by the trace and slow-log
/// exporters (escapes quote, backslash, and control characters).
void write_json_string(std::ostream& os, const char* s);
/// Trace/span ids as a quoted unpadded lowercase-hex JSON string — the
/// one id spelling used by traces, exemplars, and the wire tag.
void write_hex_id(std::ostream& os, std::uint64_t id);

struct TraceArg {
  const char* key = nullptr;
  std::int64_t value = 0;
};

/// Propagated trace identity: which trace a span belongs to and which span
/// is its parent. A zero trace id means "no trace" — spans recorded without
/// a context export exactly as before contexts existed.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool sampled = true;

  bool valid() const noexcept { return trace_id != 0; }

  friend bool operator==(const TraceContext& a,
                         const TraceContext& b) noexcept {
    return a.trace_id == b.trace_id && a.span_id == b.span_id &&
           a.sampled == b.sampled;
  }
};

struct TraceEvent {
  static constexpr std::size_t kMaxArgs = 4;

  const char* name = nullptr;
  const char* cat = nullptr;
  char phase = 'X';        // 'X' complete span, 'i' instant
  std::uint64_t ts = 0;    // microseconds (virtual or wall)
  std::uint64_t dur = 0;   // phase 'X' only
  std::uint32_t tid = 0;   // ring id, 1-based registration order
  std::uint64_t seq = 0;   // global record order (export sort key)
  // Trace identity; all zero for events recorded outside any trace, in
  // which case the export omits the fields entirely (pre-context bytes).
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::uint32_t num_args = 0;
  TraceArg args[kMaxArgs];
  // One optional string-valued annotation ("fault": "drop", ...).
  const char* note_key = nullptr;
  const char* note_value = nullptr;

  void add_arg(const char* key, std::int64_t value) noexcept {
    if (num_args < kMaxArgs) args[num_args++] = {key, value};
  }
};

/// Fixed-capacity single-producer event ring. The owning thread pushes;
/// snapshots happen after the run (or from tests) when the producer is
/// quiescent.
class TraceRing {
 public:
  TraceRing(std::size_t capacity, std::uint32_t tid)
      : events_(capacity), tid_(tid) {}

  std::uint32_t tid() const noexcept { return tid_; }
  std::size_t capacity() const noexcept { return events_.size(); }
  /// Total events ever pushed (>= surviving events).
  std::uint64_t pushed() const noexcept { return pushed_; }
  /// Events overwritten by wraparound.
  std::uint64_t dropped() const noexcept {
    return pushed_ > events_.size() ? pushed_ - events_.size() : 0;
  }

  void push(const TraceEvent& event) noexcept {
    events_[static_cast<std::size_t>(pushed_ % events_.size())] = event;
    ++pushed_;
  }

  /// Surviving events, oldest first.
  std::vector<TraceEvent> snapshot() const;

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t pushed_ = 0;
  std::uint32_t tid_;
};

class Tracer {
 public:
  enum class ClockMode {
    kWall,     // steady-clock microseconds since tracer construction
    kVirtual,  // deterministic: simulator-driven base + one tick per event
  };

  explicit Tracer(ClockMode mode, std::size_t ring_capacity = 1u << 16);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide installed tracer (nullptr when tracing is off). A
  /// plain pointer read — this is the entire disabled-path cost.
  static Tracer* current() noexcept { return current_; }
  /// Install / remove the process-wide tracer. Not thread-safe against
  /// concurrent recording: install before the run, remove after.
  static void set_current(Tracer* tracer) noexcept { current_ = tracer; }

  ClockMode mode() const noexcept { return mode_; }

  /// Current timestamp in microseconds. Virtual mode: strictly increasing,
  /// max(virtual base, last + 1) — deterministic and free of clock reads.
  std::uint64_t now() noexcept;

  /// Advance the virtual clock base (no-op in wall mode). The simulators
  /// call this once per request with a per-request time slot, so span
  /// timestamps group by request when a trace is viewed.
  void set_virtual_time(std::uint64_t micros) noexcept {
    if (mode_ == ClockMode::kVirtual && micros > virtual_base_)
      virtual_base_ = micros;
  }

  /// Record an instant event ('i' phase).
  void instant(const char* name, const char* cat,
               std::initializer_list<TraceArg> args = {});

  /// Record an instant event attached to a specific trace (exemplar
  /// back-references from histograms use this to point at a trace id).
  void instant_in_trace(const char* name, const char* cat,
                        const TraceContext& ctx,
                        std::initializer_list<TraceArg> args = {});

  /// Record a complete ('X') event with explicit timing as a child of the
  /// ambient context. Used for work measured before a context could be
  /// adopted (the server's parse span: the trace tag only exists after
  /// parsing finishes).
  void complete(const char* name, const char* cat, std::uint64_t ts,
                std::uint64_t dur, std::initializer_list<TraceArg> args = {});

  /// Record a fully built event (SpanScope's close path).
  void record(TraceEvent event);

  /// Allocate a fresh trace id / span id. Counters are per-tracer so two
  /// tracers fed the same event stream export byte-identically.
  std::uint64_t new_trace_id() noexcept {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t new_span_id() noexcept {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// The calling thread's ambient trace context (zero trace id = none).
  /// SpanScope and ScopedTraceContext push/restore it RAII-style; reading
  /// it is how instrumentation learns "which request am I part of".
  static TraceContext& ambient_context() noexcept {
    thread_local TraceContext ctx;
    return ctx;
  }

  /// Events recorded / lost to ring wraparound, across all threads.
  std::uint64_t events_recorded() const;
  std::uint64_t events_dropped() const;

  /// Write all surviving events as Chrome trace_event JSON (the
  /// "traceEvents" array form; loads in chrome://tracing and Perfetto).
  /// Events are ordered by the global sequence counter, so single-threaded
  /// runs export byte-identically for identical event streams.
  void export_chrome_json(std::ostream& os) const;

  /// All surviving events in export order (global sequence). For post-run
  /// consumers like the slow-request log's span-tree dump; call while
  /// producers are quiescent.
  std::vector<TraceEvent> snapshot_events() const;

 private:
  friend class SpanScope;

  TraceRing& ring_for_current_thread();
  std::uint64_t next_seq() noexcept {
    return seq_.fetch_add(1, std::memory_order_relaxed);
  }

  static Tracer* current_;

  ClockMode mode_;
  std::size_t ring_capacity_;
  std::uint64_t wall_epoch_ = 0;  // steady-clock micros at construction
  // Virtual-clock state; only touched in kVirtual mode, whose contract is
  // single-threaded recording (the deterministic sim stack).
  std::uint64_t virtual_base_ = 0;
  std::uint64_t last_ts_ = 0;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> next_trace_id_{1};
  std::atomic<std::uint64_t> next_span_id_{1};
  std::uint64_t id_ = 0;  // process-unique, for thread-local cache checks

  mutable std::mutex registry_mutex_;
  std::deque<std::unique_ptr<TraceRing>> rings_;
};

/// Adopts a propagated trace context (e.g. parsed off the wire) as the
/// calling thread's ambient context for the scope's lifetime. Spans opened
/// inside become children of the remote span. No-op when no tracer is
/// installed or the context is invalid.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx) {
    if (Tracer::current() == nullptr || !ctx.valid()) return;
    TraceContext& ambient = Tracer::ambient_context();
    saved_ = ambient;
    ambient = ctx;
    active_ = true;
  }

  ~ScopedTraceContext() {
    if (active_) Tracer::ambient_context() = saved_;
  }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

  bool active() const noexcept { return active_; }

 private:
  TraceContext saved_;
  bool active_ = false;
};

/// RAII span: opens at construction, records one 'X' (complete) event at
/// destruction covering the scope's duration. Inactive (all methods no-op)
/// when no tracer is installed at construction time.
///
/// Trace identity: kChild spans join the ambient context when one is set
/// (and stay context-free otherwise — exports are byte-identical to the
/// pre-context format); kRoot spans always start a fresh trace. Either
/// way, a span with an identity installs itself as the ambient context so
/// nested spans become its children, and restores the previous context on
/// close.
class SpanScope {
 public:
  enum class Kind { kChild, kRoot };

  SpanScope(const char* name, const char* cat, Kind kind = Kind::kChild)
      : tracer_(Tracer::current()) {
    if (tracer_ == nullptr) return;
    event_.name = name;
    event_.cat = cat;
    TraceContext& ambient = Tracer::ambient_context();
    if (kind == Kind::kRoot) {
      saved_ = ambient;
      event_.trace_id = tracer_->new_trace_id();
      event_.span_id = tracer_->new_span_id();
      ambient = {event_.trace_id, event_.span_id, true};
      restore_ = true;
    } else if (ambient.valid()) {
      saved_ = ambient;
      event_.trace_id = ambient.trace_id;
      event_.parent_id = ambient.span_id;
      event_.span_id = tracer_->new_span_id();
      ambient = {event_.trace_id, event_.span_id, ambient.sampled};
      restore_ = true;
    }
    event_.ts = tracer_->now();
  }

  ~SpanScope() {
    if (tracer_ == nullptr) return;
    const std::uint64_t end = tracer_->now();
    event_.dur = end - event_.ts;
    tracer_->record(event_);
    if (restore_) Tracer::ambient_context() = saved_;
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  bool active() const noexcept { return tracer_ != nullptr; }

  /// The span's own trace identity (invalid when the span carries none);
  /// this is what goes on the wire so remote spans become our children.
  TraceContext context() const noexcept {
    return {event_.trace_id, event_.span_id,
            restore_ ? Tracer::ambient_context().sampled : true};
  }

  /// Rewind the span's start (e.g. to fold in work measured before the
  /// span could be opened). Only moves backwards; timestamps stay ordered.
  void set_start(std::uint64_t ts) noexcept {
    if (tracer_ != nullptr && ts < event_.ts) event_.ts = ts;
  }

  /// Attach an integer argument (first TraceEvent::kMaxArgs stick).
  void arg(const char* key, std::int64_t value) noexcept {
    if (tracer_ != nullptr) event_.add_arg(key, value);
  }

  /// Attach the span's one string annotation (static strings only).
  void note(const char* key, const char* value) noexcept {
    if (tracer_ != nullptr) {
      event_.note_key = key;
      event_.note_value = value;
    }
  }

 private:
  Tracer* tracer_;
  TraceEvent event_;
  TraceContext saved_;
  bool restore_ = false;
};

}  // namespace rnb::obs
