#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>

namespace rnb::obs {

Tracer* Tracer::current_ = nullptr;

namespace {

std::uint64_t steady_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// JSON string escaping for names/categories/annotations. Instrumentation
// uses plain-ASCII literals, but a tracer must never emit invalid JSON no
// matter what a caller passes.
void write_json_string(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Trace/span ids serialize as unpadded lowercase hex, matching the wire
// tag format, so ids in a trace file grep-match ids in frames, exemplars,
// and slow-request reports.
void write_hex_id(std::ostream& os, std::uint64_t id) {
  char buf[17];
  char* p = buf + sizeof(buf);
  *--p = '\0';
  do {
    *--p = "0123456789abcdef"[id & 0xf];
    id >>= 4;
  } while (id != 0);
  os << '"' << p << '"';
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t cap = events_.size();
  const std::uint64_t surviving = pushed_ < cap ? pushed_ : cap;
  out.reserve(static_cast<std::size_t>(surviving));
  // Oldest surviving event first.
  const std::uint64_t start = pushed_ - surviving;
  for (std::uint64_t i = start; i < pushed_; ++i)
    out.push_back(events_[static_cast<std::size_t>(i % cap)]);
  return out;
}

Tracer::Tracer(ClockMode mode, std::size_t ring_capacity)
    : mode_(mode),
      ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      id_(next_tracer_id()) {
  if (mode_ == ClockMode::kWall) wall_epoch_ = steady_micros();
}

Tracer::~Tracer() {
  if (current_ == this) current_ = nullptr;
}

std::uint64_t Tracer::now() noexcept {
  if (mode_ == ClockMode::kWall) return steady_micros() - wall_epoch_;
  // Virtual clock: strictly increasing, one microsecond tick per read, and
  // re-based by set_virtual_time so events group into request time slots.
  last_ts_ = std::max(virtual_base_, last_ts_ + 1);
  return last_ts_;
}

TraceRing& Tracer::ring_for_current_thread() {
  // Cache the (tracer id -> ring) binding per thread; the id check makes a
  // stale cache entry from a destroyed tracer harmless.
  thread_local std::uint64_t cached_tracer_id = 0;
  thread_local TraceRing* cached_ring = nullptr;
  if (cached_tracer_id != id_) {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    rings_.push_back(std::make_unique<TraceRing>(
        ring_capacity_, static_cast<std::uint32_t>(rings_.size() + 1)));
    cached_ring = rings_.back().get();
    cached_tracer_id = id_;
  }
  return *cached_ring;
}

void Tracer::record(TraceEvent event) {
  event.seq = next_seq();
  TraceRing& ring = ring_for_current_thread();
  event.tid = ring.tid();
  ring.push(event);
}

void Tracer::instant(const char* name, const char* cat,
                     std::initializer_list<TraceArg> args) {
  // Instants join the ambient trace like spans do (retry/hedge markers
  // belong to the request that retried); outside any trace they record
  // id-free, exactly as before contexts existed.
  instant_in_trace(name, cat, ambient_context(), args);
}

void Tracer::instant_in_trace(const char* name, const char* cat,
                              const TraceContext& ctx,
                              std::initializer_list<TraceArg> args) {
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.phase = 'i';
  event.ts = now();
  if (ctx.valid()) {
    event.trace_id = ctx.trace_id;
    event.parent_id = ctx.span_id;
    event.span_id = new_span_id();
  }
  for (const TraceArg& a : args) event.add_arg(a.key, a.value);
  record(event);
}

void Tracer::complete(const char* name, const char* cat, std::uint64_t ts,
                      std::uint64_t dur,
                      std::initializer_list<TraceArg> args) {
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.phase = 'X';
  event.ts = ts;
  event.dur = dur;
  const TraceContext& ambient = ambient_context();
  if (ambient.valid()) {
    event.trace_id = ambient.trace_id;
    event.parent_id = ambient.span_id;
    event.span_id = new_span_id();
  }
  for (const TraceArg& a : args) event.add_arg(a.key, a.value);
  record(event);
}

std::uint64_t Tracer::events_recorded() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->pushed();
  return total;
}

std::uint64_t Tracer::events_dropped() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

std::vector<TraceEvent> Tracer::snapshot_events() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto& ring : rings_) {
      const std::vector<TraceEvent> part = ring->snapshot();
      events.insert(events.end(), part.begin(), part.end());
    }
  }
  // The global sequence is the deterministic total order (record order in
  // a single-threaded run; a consistent interleaving otherwise).
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return events;
}

void Tracer::export_chrome_json(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot_events();

  // All numbers are integers and all strings pass through one escaper, so
  // identical event streams serialize to identical bytes.
  os << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    os << (i == 0 ? "\n" : ",\n") << "{\"name\":";
    write_json_string(os, e.name == nullptr ? "?" : e.name);
    os << ",\"cat\":";
    write_json_string(os, e.cat == nullptr ? "?" : e.cat);
    os << ",\"ph\":\"" << e.phase << "\",\"ts\":" << e.ts;
    if (e.phase == 'X') os << ",\"dur\":" << e.dur;
    if (e.phase == 'i') os << ",\"s\":\"t\"";  // instant scope: thread
    os << ",\"pid\":1,\"tid\":" << e.tid;
    if (e.num_args != 0 || e.note_key != nullptr || e.trace_id != 0) {
      os << ",\"args\":{";
      bool first = true;
      // Trace identity rides in "args" so context-free events keep their
      // exact pre-context serialization.
      if (e.trace_id != 0) {
        os << "\"trace_id\":";
        write_hex_id(os, e.trace_id);
        os << ",\"span_id\":";
        write_hex_id(os, e.span_id);
        if (e.parent_id != 0) {
          os << ",\"parent_id\":";
          write_hex_id(os, e.parent_id);
        }
        first = false;
      }
      for (std::uint32_t a = 0; a < e.num_args; ++a) {
        if (!first) os << ',';
        first = false;
        write_json_string(os, e.args[a].key == nullptr ? "?" : e.args[a].key);
        os << ':' << e.args[a].value;
      }
      if (e.note_key != nullptr) {
        if (!first) os << ',';
        write_json_string(os, e.note_key);
        os << ':';
        write_json_string(os,
                          e.note_value == nullptr ? "?" : e.note_value);
      }
      os << '}';
    }
    os << '}';
  }
  os << (events.empty() ? "]" : "\n]") << ",\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace rnb::obs
