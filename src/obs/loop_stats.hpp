// Event-loop health counters: how busy each readiness wait is, and how
// much response data sits queued behind slow peers.
//
// An epoll-style reactor has two load signals the engine counters can't
// see. "Ready events per wait batch" tells whether the loop wakes for one
// connection at a time (idle fleet) or drains dozens per syscall
// (incast); "queue depth" — bytes buffered in connection outboxes — tells
// whether peers are consuming responses as fast as the engine produces
// them. Both are published through the server's `stats` hook next to the
// wire-level connection counters.
//
// Counters are relaxed atomics: the loop thread is the only writer, but
// stats scrapes (and tests) read from other threads.
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/metrics.hpp"

namespace rnb::obs {

class LoopStats {
 public:
  /// One wait() returned `ready` events (0 = timeout/interrupt wakeup).
  void record_batch(std::uint64_t ready) noexcept {
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    ready_events_.fetch_add(ready, std::memory_order_relaxed);
    std::uint64_t seen = max_batch_.load(std::memory_order_relaxed);
    while (ready > seen &&
           !max_batch_.compare_exchange_weak(seen, ready,
                                             std::memory_order_relaxed)) {
    }
  }

  /// Outbox bytes grew/shrank by `bytes` (queued minus flushed).
  void add_queued(std::uint64_t bytes) noexcept {
    queued_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void sub_queued(std::uint64_t bytes) noexcept {
    queued_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  std::uint64_t wakeups() const noexcept {
    return wakeups_.load(std::memory_order_relaxed);
  }
  std::uint64_t ready_events() const noexcept {
    return ready_events_.load(std::memory_order_relaxed);
  }
  std::uint64_t max_batch() const noexcept {
    return max_batch_.load(std::memory_order_relaxed);
  }
  std::uint64_t queued_bytes() const noexcept {
    return queued_bytes_.load(std::memory_order_relaxed);
  }

  /// Contribute the loop series to a stats exposition.
  void publish(MetricsRegistry& registry) const {
    registry
        .counter("rnb_kv_loop_wakeups_total",
                 "Reactor wait() calls that returned")
        .inc(wakeups());
    registry
        .counter("rnb_kv_loop_ready_events_total",
                 "Readiness events delivered across all wait() batches")
        .inc(ready_events());
    registry
        .gauge("rnb_kv_loop_max_ready_batch",
               "Largest single wait() batch observed")
        .set(static_cast<double>(max_batch()));
    registry
        .gauge("rnb_kv_loop_queued_bytes",
               "Response bytes buffered in connection outboxes")
        .set(static_cast<double>(queued_bytes()));
  }

 private:
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> ready_events_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  std::atomic<std::uint64_t> queued_bytes_{0};
};

}  // namespace rnb::obs
