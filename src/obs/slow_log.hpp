// Bounded slow-request log: the "why was THAT request slow" layer.
//
// Histograms say a p99 exists; exemplars point one bucket at one trace;
// the slow log retains the full story for the worst offenders — trace id,
// latency, and the cover decision that produced it (how many servers were
// contacted, how many waves ran, how many keys hitchhiked) — so a tail
// investigation starts from a ranked list instead of a trace-file grep.
//
// Admission is top-K by cost with an optional hard threshold: a request
// is considered when its cost meets the threshold (if any) and either the
// log has room or the cost beats the current K-th worst. A lock-free
// floor read rejects the common (fast-request) case without taking the
// mutex, so a shared log on a multithreaded serving path stays cheap.
//
// Like the Tracer, at most one SlowLog is installed process-wide
// (install before the run, remove after); servers can also own private
// instances for their `stats` exposition.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <vector>

namespace rnb::obs {

class Tracer;

/// One retained request. `cost` is whatever the recording client ranks
/// by — virtual-time latency in the sim stack, wall nanoseconds in the
/// kv stack, transaction count where no clock applies.
struct SlowRequest {
  std::uint64_t trace_id = 0;
  std::uint64_t cost = 0;
  std::uint64_t seq = 0;  // admission order, assigned by record()
  std::uint32_t items = 0;
  std::uint32_t transactions = 0;
  std::uint32_t waves = 0;
  std::uint32_t hitchhikes = 0;
  std::uint32_t retries = 0;
  std::uint32_t servers = 0;
  bool deadline_missed = false;
  /// Ring epoch the request executed under (0 = untagged / pre-elastic) —
  /// lets a flight-recorder dump correlate slow covers with migrations.
  std::uint64_t epoch = 0;
  /// Storage engine that served it (static string, nullptr = unknown).
  const char* engine = nullptr;
};

class SlowLog {
 public:
  /// Retain at most `capacity` requests; ignore requests cheaper than
  /// `threshold` outright (0 = pure top-K).
  explicit SlowLog(std::size_t capacity, std::uint64_t threshold = 0);
  ~SlowLog();

  SlowLog(const SlowLog&) = delete;
  SlowLog& operator=(const SlowLog&) = delete;

  /// The process-wide installed log (nullptr when none) — same install
  /// discipline as Tracer::current().
  static SlowLog* current() noexcept { return current_; }
  static void set_current(SlowLog* log) noexcept { current_ = log; }

  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t threshold() const noexcept { return threshold_; }

  /// Offer a request. Thread-safe; cheap when the request is obviously
  /// too fast to qualify.
  void record(SlowRequest request);

  /// Requests offered to record() (admitted or not).
  std::uint64_t considered() const noexcept {
    return considered_.load(std::memory_order_relaxed);
  }

  /// Retained requests, worst first (ties: earliest admission first).
  std::vector<SlowRequest> top() const;

  /// Human-readable ranked report, one line per request.
  void write_text(std::ostream& os) const;

  /// JSON report. When `tracer` is non-null, each entry carries the full
  /// span tree of its trace (events joined by trace id, nested by parent
  /// span id, children in record order) — the "slow request with its
  /// stitched trace attached" artifact.
  void write_json(std::ostream& os, const Tracer* tracer = nullptr) const;

 private:
  static SlowLog* current_;

  const std::size_t capacity_;
  const std::uint64_t threshold_;
  // Cost of the K-th worst retained request once full; a request below
  // this floor cannot qualify, so record() skips the mutex entirely.
  std::atomic<std::uint64_t> floor_{0};
  std::atomic<std::uint64_t> considered_{0};
  std::atomic<std::uint64_t> admissions_{0};

  mutable std::mutex mutex_;
  // Min-heap by (cost asc, seq desc): the root is the entry the next
  // admission evicts, and ties evict the most recent entry first.
  std::vector<SlowRequest> heap_;
};

}  // namespace rnb::obs
