// Fleet health: the bottleneck detector and the flight recorder.
//
// RnB's whole reason to exist is relieving per-server load skew (the
// paper's Fig. 2 scaling-factor lens); this module watches that skew
// live. Each collector sweep produces one ClusterSample — plain data, no
// dserve dependency, so the detector is unit-testable from synthetic
// fleets — and the BottleneckDetector scores it:
//
//   * load CoV: stddev/mean of per-server request rates across the up
//     servers (0 = perfectly balanced),
//   * max/mean skew: the hottest server's rate over the mean — the live
//     counterpart of the paper's scaling factor, flagged over a
//     configurable threshold,
//   * hot shards: per-shard lock-contention rates far above the fleet's
//     mean shard (a single hot key pinning one stripe),
//   * SLO burn: scraped p99 latency over the target (burn > 1 means the
//     budget is burning), flagged when breached,
//
// folded into one 0-100 score (the formula is documented in
// docs/OBSERVABILITY.md and pinned by tests — change both together).
//
// The FlightRecorder keeps the last N verdicts in a ring next to the
// SeriesStore's last-K-samples-per-series rings, and dumps both as one
// deterministic JSON snapshot: on demand, on a signal (SIGTERM by
// default), and from faultsim crash hooks — the postmortem artifact for
// "what did the fleet look like when it died".
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"

namespace rnb::obs {

/// Per-shard load observed over the last scrape interval.
struct ShardLoad {
  std::uint32_t server = 0;
  std::uint32_t shard = 0;
  double contended_per_s = 0.0;     // lock acquisitions that waited
  double acquisitions_per_s = 0.0;  // all lock acquisitions
};

/// One collector sweep, reduced to plain data.
struct ClusterSample {
  std::uint64_t t_us = 0;
  std::uint32_t servers_total = 0;
  std::uint32_t servers_up = 0;
  std::vector<std::uint8_t> up;           // per server id
  std::vector<double> server_txns_per_s;  // per server id; down = 0
  double txns_per_s = 0.0;   // fleet aggregate over the last interval
  double items_per_s = 0.0;  // keys returned per second, fleet aggregate
  double p50_us = 0.0;       // merged latency histogram quantiles
  double p99_us = 0.0;       //   (0 when no server exposes the family)
  std::uint64_t latency_count = 0;
  std::vector<ShardLoad> shards;
  // Elastic migration progress (0/false without a controller source).
  double elastic_epoch = 0.0;
  double migration_entries_scanned = 0.0;
  double migration_replicas_copied = 0.0;
  double migration_pinned_moved = 0.0;
  bool migration_active = false;
};

struct HealthConfig {
  /// Flag when max/mean per-server load exceeds this (paper Fig. 2 lens).
  double skew_threshold = 2.0;
  /// Flag when the load coefficient of variation exceeds this.
  double cov_threshold = 0.75;
  /// A shard is hot when its contended-acquisition rate exceeds this
  /// multiple of the mean across all scraped shards...
  double hot_shard_factor = 4.0;
  /// ...and at least this many contended acquisitions/s (noise floor).
  double hot_shard_min_per_s = 16.0;
  /// p99 latency target in microseconds; 0 disables the SLO term.
  double slo_p99_us = 0.0;
};

struct HealthVerdict {
  std::uint64_t t_us = 0;
  std::uint32_t servers_total = 0;
  std::uint32_t servers_up = 0;
  double load_cov = 0.0;
  double load_max_mean = 0.0;  // max/mean skew; 1.0 = balanced
  bool skew_flagged = false;
  bool fleet_degraded = false;  // any configured server down
  std::vector<ShardLoad> hot_shards;
  double p99_us = 0.0;
  double slo_burn = 0.0;  // p99 / target; 0 when no SLO configured
  bool slo_breached = false;
  bool migration_active = false;
  double score = 100.0;  // 0 (dead) .. 100 (healthy)

  bool healthy() const noexcept {
    return !skew_flagged && !slo_breached && !fleet_degraded &&
           hot_shards.empty();
  }
};

class BottleneckDetector {
 public:
  explicit BottleneckDetector(const HealthConfig& config = {})
      : config_(config) {}

  const HealthConfig& config() const noexcept { return config_; }

  /// Score one sample. Pure and deterministic: same sample, same verdict.
  HealthVerdict assess(const ClusterSample& sample) const;

 private:
  HealthConfig config_;
};

/// Ring of the last N verdicts plus a view of the series rings, dumped as
/// one JSON snapshot. The snapshot is deterministic: it contains only
/// caller-supplied timestamps and scraped values, so two identical
/// virtual-clock runs dump byte-identical files (the determinism
/// acceptance test diffs them).
class FlightRecorder {
 public:
  /// `series` may be null (verdicts only); it must outlive the recorder.
  FlightRecorder(const SeriesStore* series, std::size_t verdict_capacity);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(const HealthVerdict& verdict);

  std::size_t verdict_capacity() const noexcept { return capacity_; }
  /// Retained verdicts, oldest first.
  std::vector<HealthVerdict> verdicts() const;
  /// Latest verdict (default-constructed before the first record()).
  HealthVerdict last_verdict() const;

  /// Serialize the snapshot: {"reason", "verdicts":[...], "series":[...]}.
  void write_json(std::ostream& os, const char* reason = "dump") const;

  /// Pre-serialize the current snapshot into an atomically-published
  /// buffer so a signal handler can dump it with async-signal-safe calls
  /// only. Call after record() when a signal dump is installed (the
  /// collector does); cheap no-op otherwise.
  void refresh_snapshot();

  /// Install this recorder process-wide and register a handler that
  /// writes the latest pre-serialized snapshot to `path` on `signum`
  /// (SIGTERM by default, pass 0 to skip the handler and only install
  /// for crash-hook dumps). At most one recorder is installed at a time,
  /// same discipline as Tracer::current(). The destructor uninstalls.
  void install_dump(const std::string& path, int signum);

  /// The installed recorder, or nullptr.
  static FlightRecorder* installed() noexcept;

  /// Crash-hook seam: when a recorder is installed with a path, write its
  /// latest snapshot (suffixed with `reason`) immediately. faultsim calls
  /// this as it applies a crash window so the postmortem file exists even
  /// if the process never reaches its orderly dump. No-op otherwise.
  static void dump_installed(const char* reason);

 private:
  void serialize_locked(std::ostream& os, const char* reason) const;

  const SeriesStore* series_;
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<HealthVerdict> ring_;

  std::string dump_path_;
  // Published snapshot for the signal handler. Retired buffers are kept
  // in a short ring rather than freed: a handler may still be reading
  // one, and leaking a few small strings beats a use-after-free in a
  // dying process.
  std::atomic<const std::string*> snapshot_{nullptr};
  std::deque<std::unique_ptr<std::string>> retired_;
};

}  // namespace rnb::obs
