#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"
#include "obs/promtext.hpp"

namespace rnb::obs {
namespace {

// Locale-independent, deterministic number formatting: the shared %.17g
// writer in promtext.cpp, so the scrape-side parser and this writer can
// never disagree on a token.
void write_double(std::ostream& os, double v) { write_prom_double(os, v); }

void write_series_name(std::ostream& os, const std::string& name,
                       const std::string& labels,
                       const std::string& extra = "") {
  os << name;
  if (labels.empty() && extra.empty()) return;
  os << '{' << labels;
  if (!labels.empty() && !extra.empty()) os << ',';
  os << extra << '}';
}

// Unpadded lowercase hex, matching trace exports and the wire tag, so an
// exemplar's trace id greps straight into the trace file.
void write_hex(std::ostream& os, std::uint64_t id) {
  char buf[17];
  std::size_t n = 0;
  do {
    buf[n++] = "0123456789abcdef"[id & 0xf];
    id >>= 4;
  } while (id != 0);
  while (n != 0) os << buf[--n];
}

}  // namespace

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string format_label(std::string_view key, std::string_view value) {
  std::string out(key);
  out += "=\"";
  out += escape_label_value(value);
  out += '"';
  return out;
}

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name,
                                                 const std::string& help,
                                                 Kind kind) {
  for (Family& fam : families_) {
    if (fam.name == name) {
      RNB_REQUIRE(fam.kind == kind &&
                  "metric family re-registered with a different type");
      return fam;
    }
  }
  families_.push_back(Family{name, help, kind, {}});
  return families_.back();
}

MetricsRegistry::Series& MetricsRegistry::series(Family& fam,
                                                 const std::string& labels) {
  for (Series& s : fam.series)
    if (s.labels == labels) return s;
  fam.series.emplace_back();
  fam.series.back().labels = labels;
  return fam.series.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const std::string& labels) {
  return series(family(name, help, Kind::kCounter), labels).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help,
                              const std::string& labels) {
  return series(family(name, help, Kind::kGauge), labels).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const std::string& labels,
                                      unsigned significant_bits,
                                      double scale) {
  Series& s = series(family(name, help, Kind::kHistogram), labels);
  if (s.histogram.empty() &&
      s.histogram.significant_bits() != significant_bits)
    s.histogram = Histogram(significant_bits);
  s.scale = scale;
  return s.histogram;
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  for (const Family& fam : families_) {
    // HELP text has its own escaping rules (backslash and newline only).
    os << "# HELP " << fam.name << ' ';
    for (const char c : fam.help) {
      if (c == '\\')
        os << "\\\\";
      else if (c == '\n')
        os << "\\n";
      else
        os << c;
    }
    os << '\n';
    os << "# TYPE " << fam.name << ' '
       << (fam.kind == Kind::kCounter
               ? "counter"
               : (fam.kind == Kind::kGauge ? "gauge" : "histogram"))
       << '\n';
    for (const Series& s : fam.series) {
      switch (fam.kind) {
        case Kind::kCounter:
          write_series_name(os, fam.name, s.labels);
          os << ' ' << s.counter.value() << '\n';
          break;
        case Kind::kGauge: {
          write_series_name(os, fam.name, s.labels);
          os << ' ';
          const double v = s.gauge.value();
          write_double(os, std::isfinite(v) ? v : 0.0);
          os << '\n';
          break;
        }
        case Kind::kHistogram: {
          // Cumulative buckets over the non-empty HDR buckets; `le` is each
          // bucket's inclusive upper bound in exposed (scaled) units.
          std::uint64_t cumulative = 0;
          s.histogram.for_each_bucket([&](const Histogram::Bucket& b) {
            cumulative += b.count;
            os << fam.name << "_bucket{";
            if (!s.labels.empty()) os << s.labels << ',';
            os << "le=\"";
            write_double(os, static_cast<double>(b.upper) / s.scale);
            os << "\"} " << cumulative;
            // OpenMetrics exemplar: link the bucket to the trace behind
            // its worst sample. Only traced histograms carry these, so
            // exemplar-free expositions stay byte-identical.
            if (const Histogram::Exemplar* ex =
                    s.histogram.bucket_exemplar(b.index)) {
              os << " # {trace_id=\"";
              write_hex(os, ex->trace_id);
              os << "\"} ";
              write_double(os, static_cast<double>(ex->value) / s.scale);
            }
            os << '\n';
          });
          os << fam.name << "_bucket{";
          if (!s.labels.empty()) os << s.labels << ',';
          os << "le=\"+Inf\"} " << s.histogram.count() << '\n';
          write_series_name(os, fam.name + "_sum", s.labels);
          os << ' ';
          write_double(os, static_cast<double>(s.histogram.sum()) / s.scale);
          os << '\n';
          write_series_name(os, fam.name + "_count", s.labels);
          os << ' ' << s.histogram.count() << '\n';
          break;
        }
      }
    }
  }
}

}  // namespace rnb::obs
