#include "obs/hdr_histogram.hpp"

#include <bit>
#include <cmath>

namespace rnb::obs {

// Layout recap: let k = significant_bits.
//   values v < 2^(k+1)           -> index v                      (exact)
//   values with e = floor(log2 v) >= k+1
//                                -> index (e - k + 1) * 2^k + sub
//      where sub = (v >> (e - k)) - 2^k  in [0, 2^k)
// Index ranges are contiguous: the exact region ends at 2^(k+1) - 1, and
// e = k+1 starts exactly at index 2^(k+1).

std::size_t Histogram::bucket_index(std::uint64_t value) const noexcept {
  const std::uint64_t exact_limit = std::uint64_t{1} << (bits_ + 1);
  if (value < exact_limit) return static_cast<std::size_t>(value);
  const unsigned e = 63u - static_cast<unsigned>(std::countl_zero(value));
  const unsigned shift = e - bits_;
  const std::uint64_t sub =
      (value >> shift) - (std::uint64_t{1} << bits_);
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(e - bits_ + 1) << bits_) + sub);
}

std::uint64_t Histogram::bucket_lower(std::size_t index) const noexcept {
  const std::uint64_t exact_limit = std::uint64_t{1} << (bits_ + 1);
  if (index < exact_limit) return index;
  const std::uint64_t j = index - exact_limit;
  const unsigned block = static_cast<unsigned>(j >> bits_);  // e - (k+1)
  const std::uint64_t sub = j & ((std::uint64_t{1} << bits_) - 1);
  const unsigned e = bits_ + 1 + block;
  const unsigned width_log2 = e - bits_;  // block + 1
  return (std::uint64_t{1} << e) + (sub << width_log2);
}

std::uint64_t Histogram::bucket_upper(std::size_t index) const noexcept {
  const std::uint64_t exact_limit = std::uint64_t{1} << (bits_ + 1);
  if (index < exact_limit) return index;
  const std::uint64_t j = index - exact_limit;
  const unsigned block = static_cast<unsigned>(j >> bits_);
  const unsigned width_log2 = block + 1;
  return bucket_lower(index) + (std::uint64_t{1} << width_log2) - 1;
}

void Histogram::record(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  const std::size_t index = bucket_index(value);
  if (index >= counts_.size()) counts_.resize(index + 1, 0);
  counts_[index] += count;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  count_ += count;
  sum_ += value * count;
}

void Histogram::record_traced(std::uint64_t value, std::uint64_t trace_id) {
  record(value);
  if (trace_id == 0) return;
  Exemplar& ex = exemplars_[bucket_index(value)];
  // >= so the most recent of equally bad samples wins; a fresh entry has
  // value 0 and any sample displaces it.
  if (ex.trace_id == 0 || value >= ex.value) ex = {value, trace_id};
}

const Histogram::Exemplar* Histogram::bucket_exemplar(
    std::size_t index) const noexcept {
  const auto it = exemplars_.find(index);
  return it == exemplars_.end() ? nullptr : &it->second;
}

std::size_t Histogram::index_for_rank(std::uint64_t rank) const noexcept {
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) return i;
  }
  return counts_.empty() ? 0 : counts_.size() - 1;
}

std::uint64_t Histogram::quantile(double q) const {
  RNB_REQUIRE(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0;
  if (q <= 0.0) return min_;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::uint64_t upper =
      bucket_upper(index_for_rank(rank == 0 ? 1 : rank));
  // The bucket bound can overshoot what was actually recorded; the true
  // maximum is known exactly, so clamp to it (this also makes quantile(1)
  // exact).
  return upper < max_ ? upper : max_;
}

std::uint64_t Histogram::quantile_lower_bound(double q) const {
  RNB_REQUIRE(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0;
  if (q <= 0.0) return min_;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::uint64_t lower =
      bucket_lower(index_for_rank(rank == 0 ? 1 : rank));
  return lower > min_ ? lower : min_;
}

void Histogram::merge(const Histogram& other) {
  RNB_REQUIRE(bits_ == other.bits_);
  if (other.count_ == 0) return;
  if (other.counts_.size() > counts_.size())
    counts_.resize(other.counts_.size(), 0);
  for (std::size_t i = 0; i < other.counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  // Exemplars merge with the same worst-sample rule as record_traced (the
  // incoming histogram counts as "more recent"), keeping merge order
  // deterministic for deterministic inputs.
  for (const auto& [index, ex] : other.exemplars_) {
    Exemplar& mine = exemplars_[index];
    if (mine.trace_id == 0 || ex.value >= mine.value) mine = ex;
  }
}

}  // namespace rnb::obs
