// Metrics registry with Prometheus text exposition.
//
// A deliberately small surface: named counters (monotone uint64), gauges
// (double), and HDR histograms (obs::Histogram, exposed as cumulative
// Prometheus buckets). Families keep insertion order and series within a
// family keep insertion order, so exposition output is deterministic —
// the CI smoke job diffs it and the promtool-style regex validates every
// line.
//
// Threading: counters are relaxed atomics (safe to bump from anywhere);
// gauges are atomic doubles; histograms are single-writer (each simulator
// or server owns its own and exposition happens after, or between,
// requests). Handles returned by the registry are stable for the
// registry's lifetime.
//
// Exposition format (text/plain version 0.0.4):
//   # HELP name help text
//   # TYPE name counter|gauge|histogram
//   name{label="value"} 123
//   name_bucket{le="0.001"} 4   (cumulative; +Inf, _sum, _count for
//                                histograms, with an optional value scale
//                                so nanosecond-recorded histograms expose
//                                seconds)
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/hdr_histogram.hpp"

namespace rnb::obs {

/// Escape a label value per the Prometheus text format: backslash, double
/// quote, and newline become \\, \", and \n. Every label value built from
/// runtime data must pass through here (or format_label) — raw
/// interpolation produces unparseable exposition text the moment a key
/// contains a quote.
std::string escape_label_value(std::string_view value);

/// Format one `key="value"` label pair with the value escaped. Join pairs
/// with ',' to build the registry's label-body strings.
std::string format_label(std::string_view key, std::string_view value);

class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

class MetricsRegistry {
 public:
  /// Get or create a counter series. `labels` is the raw label body
  /// without braces, e.g. `server="3",round="1"`; empty means no labels.
  /// The first registration of a family fixes its help text and type;
  /// registering the same name with a different type is an error.
  Counter& counter(const std::string& name, const std::string& help,
                   const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& help,
               const std::string& labels = "");
  /// Histogram series. `scale` divides recorded values on exposition
  /// (record nanoseconds, expose seconds with scale = 1e9); quantile reads
  /// on the returned histogram stay in recorded units.
  Histogram& histogram(const std::string& name, const std::string& help,
                       const std::string& labels = "",
                       unsigned significant_bits = 7, double scale = 1.0);

  /// Write every family in registration order.
  void write_prometheus(std::ostream& os) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    std::string labels;
    // Exactly one is engaged, per the family's kind. deque-backed so
    // handles stay stable as series are added.
    Counter counter;
    Gauge gauge;
    Histogram histogram{7};
    double scale = 1.0;
  };

  struct Family {
    std::string name;
    std::string help;
    Kind kind;
    std::deque<Series> series;
  };

  Family& family(const std::string& name, const std::string& help,
                 Kind kind);
  Series& series(Family& fam, const std::string& labels);

  std::deque<Family> families_;
};

}  // namespace rnb::obs
