#include "obs/health.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstring>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "obs/promtext.hpp"
#include "obs/trace.hpp"

namespace rnb::obs {
namespace {

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

// JSON-escape a std::string (write_json_string takes const char* and would
// truncate at an embedded NUL; series keys carry raw label-value bytes).
void write_json_sv(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// JSON numbers cannot be Inf/NaN tokens; the flight recorder maps them to
// 0 (they only arise from degenerate rollups like 0-interval rates).
void write_json_double(std::ostream& os, double v) {
  write_prom_double(os, std::isfinite(v) ? v : 0.0);
}

void write_verdict_json(std::ostream& os, const HealthVerdict& v) {
  os << "{\"t_us\":" << v.t_us << ",\"servers_total\":" << v.servers_total
     << ",\"servers_up\":" << v.servers_up << ",\"load_cov\":";
  write_json_double(os, v.load_cov);
  os << ",\"load_max_mean\":";
  write_json_double(os, v.load_max_mean);
  os << ",\"skew_flagged\":" << (v.skew_flagged ? "true" : "false")
     << ",\"fleet_degraded\":" << (v.fleet_degraded ? "true" : "false")
     << ",\"hot_shards\":[";
  for (std::size_t i = 0; i < v.hot_shards.size(); ++i) {
    const ShardLoad& h = v.hot_shards[i];
    if (i != 0) os << ',';
    os << "{\"server\":" << h.server << ",\"shard\":" << h.shard
       << ",\"contended_per_s\":";
    write_json_double(os, h.contended_per_s);
    os << ",\"acquisitions_per_s\":";
    write_json_double(os, h.acquisitions_per_s);
    os << '}';
  }
  os << "],\"p99_us\":";
  write_json_double(os, v.p99_us);
  os << ",\"slo_burn\":";
  write_json_double(os, v.slo_burn);
  os << ",\"slo_breached\":" << (v.slo_breached ? "true" : "false")
     << ",\"migration_active\":" << (v.migration_active ? "true" : "false")
     << ",\"healthy\":" << (v.healthy() ? "true" : "false") << ",\"score\":";
  write_json_double(os, v.score);
  os << '}';
}

// Process-wide installed recorder (same singleton discipline as
// Tracer::current()); the handler path below reads only the atomics.
std::atomic<FlightRecorder*> g_installed{nullptr};
// Snapshot + destination for the signal handler, published by
// refresh_snapshot()/install_dump(). Plain C arrays/pointers so the
// handler touches no C++ machinery.
std::atomic<const std::string*> g_snapshot{nullptr};
char g_dump_path[512] = {0};

extern "C" void flight_recorder_signal_dump(int) {
  // Async-signal-safe only: open/write/close on pre-serialized bytes.
  const std::string* snap = g_snapshot.load(std::memory_order_acquire);
  if (snap == nullptr || g_dump_path[0] == '\0') return;
  const int fd = ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  const char* p = snap->data();
  std::size_t left = snap->size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n <= 0) break;
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  ::close(fd);
}

}  // namespace

HealthVerdict BottleneckDetector::assess(const ClusterSample& sample) const {
  HealthVerdict v;
  v.t_us = sample.t_us;
  v.servers_total = sample.servers_total;
  v.servers_up = sample.servers_up;
  v.p99_us = sample.p99_us;
  v.migration_active = sample.migration_active;
  v.fleet_degraded =
      sample.servers_total > 0 && sample.servers_up < sample.servers_total;

  // Load dispersion across the *up* servers: a down server is a
  // degradation fact, not a skew fact.
  double sum = 0.0, max = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < sample.server_txns_per_s.size(); ++i) {
    if (i < sample.up.size() && sample.up[i] == 0) continue;
    const double r = sample.server_txns_per_s[i];
    sum += r;
    max = std::max(max, r);
    ++n;
  }
  const double mean = n > 0 ? sum / static_cast<double>(n) : 0.0;
  if (n > 0 && mean > 0.0) {
    double var = 0.0;
    for (std::size_t i = 0; i < sample.server_txns_per_s.size(); ++i) {
      if (i < sample.up.size() && sample.up[i] == 0) continue;
      const double d = sample.server_txns_per_s[i] - mean;
      var += d * d;
    }
    var /= static_cast<double>(n);
    v.load_cov = std::sqrt(var) / mean;
    v.load_max_mean = max / mean;
  } else {
    v.load_cov = 0.0;
    v.load_max_mean = n > 0 ? 1.0 : 0.0;
  }
  v.skew_flagged = n > 1 && (v.load_max_mean > config_.skew_threshold ||
                             v.load_cov > config_.cov_threshold);

  // Hot shards: contended-lock rate far above the mean shard, with a
  // noise floor so an idle fleet's single busy stripe doesn't page.
  if (!sample.shards.empty()) {
    double contended_sum = 0.0;
    for (const ShardLoad& s : sample.shards) contended_sum += s.contended_per_s;
    const double shard_mean =
        contended_sum / static_cast<double>(sample.shards.size());
    for (const ShardLoad& s : sample.shards) {
      if (s.contended_per_s >= config_.hot_shard_min_per_s &&
          s.contended_per_s > config_.hot_shard_factor * shard_mean)
        v.hot_shards.push_back(s);
    }
  }

  if (config_.slo_p99_us > 0.0 && sample.latency_count > 0) {
    v.slo_burn = sample.p99_us / config_.slo_p99_us;
    v.slo_breached = v.slo_burn > 1.0;
  }

  // Score formula — documented in docs/OBSERVABILITY.md, pinned by
  // health_test.cpp; keep the three in sync.
  double score = 100.0;
  if (sample.servers_total > 0)
    score -= 50.0 * (1.0 - static_cast<double>(sample.servers_up) /
                               static_cast<double>(sample.servers_total));
  if (config_.skew_threshold > 1.0)
    score -= 25.0 * clamp01((v.load_max_mean - 1.0) /
                            (config_.skew_threshold - 1.0));
  if (v.slo_burn > 1.0) score -= 25.0 * clamp01(v.slo_burn - 1.0);
  score -= std::min(15.0, 5.0 * static_cast<double>(v.hot_shards.size()));
  v.score = std::max(0.0, score);
  return v;
}

FlightRecorder::FlightRecorder(const SeriesStore* series,
                               std::size_t verdict_capacity)
    : series_(series), capacity_(verdict_capacity) {
  RNB_REQUIRE(capacity_ > 0);
}

FlightRecorder::~FlightRecorder() {
  FlightRecorder* self = this;
  if (g_installed.compare_exchange_strong(self, nullptr)) {
    g_snapshot.store(nullptr, std::memory_order_release);
    g_dump_path[0] = '\0';
  }
}

void FlightRecorder::record(const HealthVerdict& verdict) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(verdict);
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<HealthVerdict> FlightRecorder::verdicts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

HealthVerdict FlightRecorder::last_verdict() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.empty() ? HealthVerdict{} : ring_.back();
}

void FlightRecorder::serialize_locked(std::ostream& os,
                                      const char* reason) const {
  os << "{\n  \"reason\": ";
  write_json_sv(os, reason == nullptr ? "dump" : reason);
  os << ",\n  \"verdicts\": [";
  bool first = true;
  for (const HealthVerdict& v : ring_) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_verdict_json(os, v);
  }
  os << (first ? "" : "\n  ") << "],\n  \"series\": [";
  first = true;
  if (series_ != nullptr) {
    series_->for_each([&](const std::string& key, const TimeSeries& ts) {
      os << (first ? "\n    " : ",\n    ");
      first = false;
      os << "{\"key\": ";
      write_json_sv(os, key);
      os << ", \"appended\": " << ts.appended() << ", \"samples\": [";
      for (std::size_t i = 0; i < ts.size(); ++i) {
        if (i != 0) os << ',';
        os << '[' << ts.at(i).t_us << ',';
        write_json_double(os, ts.at(i).value);
        os << ']';
      }
      os << "]}";
    });
  }
  os << (first ? "" : "\n  ") << "]\n}\n";
}

void FlightRecorder::write_json(std::ostream& os, const char* reason) const {
  std::lock_guard<std::mutex> lock(mutex_);
  serialize_locked(os, reason);
}

void FlightRecorder::refresh_snapshot() {
  if (g_installed.load(std::memory_order_acquire) != this) return;
  std::ostringstream out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    serialize_locked(out, "signal");
  }
  auto fresh = std::make_unique<std::string>(std::move(out).str());
  const std::string* published = fresh.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    retired_.push_back(std::move(fresh));
    // Keep a few retired snapshots alive: a handler interrupted between
    // load and write may still be reading an old one (best-effort — this
    // bounds memory, not the race; see header comment).
    while (retired_.size() > 4) retired_.pop_front();
  }
  snapshot_.store(published, std::memory_order_release);
  g_snapshot.store(published, std::memory_order_release);
}

void FlightRecorder::install_dump(const std::string& path, int signum) {
  RNB_REQUIRE(!path.empty());
  RNB_REQUIRE(path.size() < sizeof(g_dump_path));
  dump_path_ = path;
  std::memcpy(g_dump_path, path.c_str(), path.size() + 1);
  g_installed.store(this, std::memory_order_release);
  refresh_snapshot();
  if (signum != 0) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = flight_recorder_signal_dump;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(signum, &sa, nullptr);
  }
}

FlightRecorder* FlightRecorder::installed() noexcept {
  return g_installed.load(std::memory_order_acquire);
}

void FlightRecorder::dump_installed(const char* reason) {
  FlightRecorder* rec = g_installed.load(std::memory_order_acquire);
  if (rec == nullptr || rec->dump_path_.empty()) return;
  // Ordinary (non-signal) context: serialize fresh with the caller's
  // reason so the crash dump reflects the instant of the fault.
  std::ostringstream out;
  {
    std::lock_guard<std::mutex> lock(rec->mutex_);
    rec->serialize_locked(out, reason);
  }
  const std::string text = std::move(out).str();
  const int fd =
      ::open(rec->dump_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  const char* p = text.data();
  std::size_t left = text.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n <= 0) break;
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  ::close(fd);
}

}  // namespace rnb::obs
