// MetricsCollector: the cluster telemetry plane's scrape loop.
//
// The serving tier already answers `stats` with a Prometheus exposition;
// this is the other half — a collector that periodically round-trips that
// verb to every member of a ServerGroup over the ordinary wire (loopback
// or TCP, through the same KvTransport clients use), parses the text with
// obs/promtext, and feeds per-series ring buffers (obs/timeseries). On
// top of the rings it computes cluster rollups each sweep:
//
//   * aggregate txns/s and items/s (reset-aware counter rates),
//   * per-server load shares — the live view of the paper's per-server
//     skew — plus CoV and max/mean,
//   * merged fleet latency histogram (assemble_histogram per server, then
//     the HDR associative merge) with p50/p99,
//   * per-shard lock-contention rates for hot-shard detection,
//   * elastic migration progress from rnb_elastic_* series contributed by
//     a local source (the MembershipController's registry — those series
//     live on the controller, not on any server).
//
// Each rollup becomes a ClusterSample, scored by the BottleneckDetector
// and recorded (with synthetic `cluster:*` series) into the
// FlightRecorder.
//
// Fault tolerance: a down server (non-kOk roundtrip, or unparseable
// response) is a *mark* — up=0 in the sample, rates drop out of the
// rollup — never an error. Scraping must keep working while the fleet is
// dying; that is the whole point of a flight recorder.
//
// Clocking: scrape_once(now_us) takes caller-supplied microseconds, so
// sims drive it from virtual time and get byte-identical flight-recorder
// dumps across identical runs (the determinism acceptance test). start()
// spawns a wall-clock thread that feeds scrape_once from
// steady-clock-since-construction for live benches.
//
// Cardinality: every scraped sample is ingested as series key
// "s<id>:<name>{<canonical label body>}" except the trace-id-labelled
// slow-transaction gauges, whose keys would grow without bound (each is a
// one-point series); slow requests are correlated through the slow log's
// own dump instead.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "kv/kv_transport.hpp"
#include "obs/health.hpp"
#include "obs/promtext.hpp"
#include "obs/timeseries.hpp"

namespace rnb::dserve {

struct CollectorConfig {
  /// Ring capacity per series (the flight recorder's last-K window).
  std::size_t samples_per_series = 128;
  /// Health-verdict ring capacity.
  std::size_t verdict_capacity = 64;
  obs::HealthConfig health;
  /// Histogram family merged across servers for fleet latency quantiles,
  /// and the exposition scale to undo (the registry exposes this family
  /// with scale 1e6: recorded units are microseconds).
  std::string latency_family = "rnb_kv_handle_latency_seconds";
  double latency_scale = 1e6;
};

class MetricsCollector {
 public:
  /// `transport` is the collector's own connection to the fleet (e.g. a
  /// fresh ServerGroup::connect()); it must outlive the collector.
  explicit MetricsCollector(kv::KvTransport& transport,
                            CollectorConfig config = {});
  ~MetricsCollector();

  MetricsCollector(const MetricsCollector&) = delete;
  MetricsCollector& operator=(const MetricsCollector&) = delete;

  /// Register a local (not-over-the-wire) exposition source, e.g. a
  /// MembershipController's registry. Scraped every sweep; series are
  /// ingested under "<instance>:<name>...". Call before the first scrape.
  void add_local_source(std::string instance,
                        std::function<std::string()> render);

  /// One sweep at caller-supplied time: scrape every server + local
  /// source, ingest, roll up, assess, record. Returns the verdict.
  obs::HealthVerdict scrape_once(std::uint64_t now_us);

  /// Spawn the wall-clock scrape thread (idempotent). Timestamps are
  /// steady-clock microseconds since construction.
  void start(std::uint64_t period_ms);
  /// Join the scrape thread (no-op when not started).
  void stop();

  /// Microseconds of steady clock since construction (the wall-mode
  /// timestamp source, exposed so callers can line other events up).
  std::uint64_t elapsed_us() const;

  std::uint64_t scrapes() const;
  obs::ClusterSample last_sample() const;
  obs::HealthVerdict last_verdict() const;

  const obs::SeriesStore& store() const noexcept { return store_; }
  obs::FlightRecorder& recorder() noexcept { return recorder_; }
  const obs::BottleneckDetector& detector() const noexcept {
    return detector_;
  }

  /// One rnbtop-style text frame: fleet line, per-server load shares,
  /// migration progress when active.
  void write_top(std::ostream& os) const;

 private:
  /// Parse `text` and append every sample (minus the trace-id-labelled
  /// family) under `prefix`. False when the text does not parse.
  bool ingest(const std::string& prefix, std::string_view text,
              std::uint64_t now_us, obs::PromScrape& parsed);

  kv::KvTransport& transport_;
  CollectorConfig config_;

  mutable std::mutex mutex_;
  obs::SeriesStore store_;
  obs::BottleneckDetector detector_;
  obs::FlightRecorder recorder_;
  std::vector<std::pair<std::string, std::function<std::string()>>> locals_;
  obs::ClusterSample last_sample_;
  std::uint64_t scrapes_ = 0;

  std::chrono::steady_clock::time_point epoch_;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace rnb::dserve
