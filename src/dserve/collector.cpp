#include "dserve/collector.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "kv/protocol.hpp"
#include "obs/hdr_histogram.hpp"

namespace rnb::dserve {
namespace {

constexpr std::string_view kEndFrame = "END\r\n";
// Trace-id-labelled gauges: every sample is a fresh one-point series, so
// ingesting them would grow the key space without bound.
constexpr std::string_view kSkipFamily = "rnb_kv_slow_transaction_cost";

std::string series_key(const std::string& prefix,
                       const obs::PromSample& sample) {
  std::string key = prefix;
  key += sample.name;
  if (!sample.labels.empty()) {
    key += '{';
    key += sample.label_body();
    key += '}';
  }
  return key;
}

double ring_rate(const obs::SeriesStore& store, const std::string& key) {
  const obs::TimeSeries* ts = store.find(key);
  return ts == nullptr ? 0.0 : ts->rate_last_per_s();
}

double ring_last(const obs::SeriesStore& store, const std::string& key) {
  const obs::TimeSeries* ts = store.find(key);
  return ts == nullptr ? 0.0 : ts->last();
}

double ring_delta_last(const obs::SeriesStore& store, const std::string& key) {
  const obs::TimeSeries* ts = store.find(key);
  return ts == nullptr ? 0.0 : ts->delta_last();
}

}  // namespace

MetricsCollector::MetricsCollector(kv::KvTransport& transport,
                                   CollectorConfig config)
    : transport_(transport),
      config_(std::move(config)),
      store_(config_.samples_per_series),
      detector_(config_.health),
      recorder_(&store_, config_.verdict_capacity),
      epoch_(std::chrono::steady_clock::now()) {}

MetricsCollector::~MetricsCollector() { stop(); }

void MetricsCollector::add_local_source(std::string instance,
                                        std::function<std::string()> render) {
  std::lock_guard<std::mutex> lock(mutex_);
  locals_.emplace_back(std::move(instance), std::move(render));
}

bool MetricsCollector::ingest(const std::string& prefix, std::string_view text,
                              std::uint64_t now_us, obs::PromScrape& parsed) {
  if (!obs::parse_prometheus(text, parsed)) return false;
  for (const obs::PromFamily& fam : parsed.families) {
    if (fam.name == kSkipFamily) continue;
    for (const obs::PromSample& s : fam.samples)
      store_.series(series_key(prefix, s)).append(now_us, s.value);
  }
  return true;
}

obs::HealthVerdict MetricsCollector::scrape_once(std::uint64_t now_us) {
  std::lock_guard<std::mutex> lock(mutex_);

  obs::ClusterSample sample;
  sample.t_us = now_us;
  const ServerId fleet = transport_.num_servers();
  sample.servers_total = fleet;
  sample.up.assign(fleet, 0);
  sample.server_txns_per_s.assign(fleet, 0.0);

  obs::Histogram merged(7);
  std::string request;
  kv::encode_stats(request);

  for (ServerId s = 0; s < fleet; ++s) {
    std::string response;
    const kv::TransportResult result =
        transport_.roundtrip(s, request, response);
    if (result.status != kv::TransportStatus::kOk) continue;  // down: a mark
    std::string_view text = response;
    if (text.size() >= kEndFrame.size() &&
        text.substr(text.size() - kEndFrame.size()) == kEndFrame)
      text.remove_suffix(kEndFrame.size());

    std::string prefix = "s" + std::to_string(s) + ":";
    obs::PromScrape parsed;
    if (!ingest(prefix, text, now_us, parsed)) continue;  // garbled: a mark
    sample.up[s] = 1;
    ++sample.servers_up;

    sample.server_txns_per_s[s] =
        ring_rate(store_, prefix + "rnb_kv_transactions_total");
    sample.txns_per_s += sample.server_txns_per_s[s];
    sample.items_per_s +=
        ring_rate(store_, prefix + "rnb_kv_keys_returned_total");

    if (const obs::PromFamily* fam =
            parsed.family("rnb_kv_shard_lock_contended_total")) {
      for (const obs::PromSample& shard_sample : fam->samples) {
        const std::string* shard = shard_sample.label("shard");
        if (shard == nullptr) continue;
        obs::ShardLoad load;
        load.server = s;
        load.shard =
            static_cast<std::uint32_t>(std::strtoul(shard->c_str(), nullptr, 10));
        load.contended_per_s =
            ring_rate(store_, series_key(prefix, shard_sample));
        load.acquisitions_per_s = ring_rate(
            store_, prefix + "rnb_kv_shard_lock_acquisitions_total{shard=\"" +
                        *shard + "\"}");
        sample.shards.push_back(load);
      }
    }

    if (const obs::PromFamily* fam = parsed.family(config_.latency_family)) {
      if (auto h = obs::assemble_histogram(*fam, "", config_.latency_scale))
        merged.merge(*h);
    }
  }

  if (!merged.empty()) {
    sample.p50_us = static_cast<double>(merged.quantile(0.5));
    sample.p99_us = static_cast<double>(merged.quantile(0.99));
    sample.latency_count = merged.count();
  }

  for (const auto& [instance, render] : locals_) {
    const std::string prefix = instance + ":";
    obs::PromScrape parsed;
    if (!ingest(prefix, render(), now_us, parsed)) continue;
    sample.elastic_epoch = std::max(
        sample.elastic_epoch, ring_last(store_, prefix + "rnb_elastic_epoch"));
    sample.migration_entries_scanned +=
        ring_last(store_, prefix + "rnb_elastic_entries_scanned_total");
    sample.migration_replicas_copied +=
        ring_last(store_, prefix + "rnb_elastic_replicas_copied_total");
    sample.migration_pinned_moved +=
        ring_last(store_, prefix + "rnb_elastic_pinned_moved_total");
    if (ring_delta_last(store_, prefix + "rnb_elastic_entries_scanned_total") >
            0.0 ||
        ring_delta_last(store_,
                        prefix + "rnb_elastic_replicas_copied_total") > 0.0 ||
        ring_delta_last(store_, prefix + "rnb_elastic_pinned_moved_total") >
            0.0)
      sample.migration_active = true;
  }

  const obs::HealthVerdict verdict = detector_.assess(sample);

  // Synthetic rollup series: the flight recorder's cluster-level rings.
  store_.series("cluster:txns_per_s").append(now_us, sample.txns_per_s);
  store_.series("cluster:items_per_s").append(now_us, sample.items_per_s);
  store_.series("cluster:servers_up")
      .append(now_us, static_cast<double>(sample.servers_up));
  store_.series("cluster:p99_us").append(now_us, sample.p99_us);
  store_.series("cluster:load_cov").append(now_us, verdict.load_cov);
  store_.series("cluster:load_max_mean").append(now_us, verdict.load_max_mean);
  store_.series("cluster:health_score").append(now_us, verdict.score);

  last_sample_ = std::move(sample);
  ++scrapes_;
  recorder_.record(verdict);
  recorder_.refresh_snapshot();
  return verdict;
}

void MetricsCollector::start(std::uint64_t period_ms) {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this, period_ms] {
    while (running_.load(std::memory_order_acquire)) {
      scrape_once(elapsed_us());
      // Sleep in small slices so stop() returns promptly.
      std::uint64_t slept = 0;
      while (slept < period_ms && running_.load(std::memory_order_acquire)) {
        const std::uint64_t slice = std::min<std::uint64_t>(10, period_ms - slept);
        std::this_thread::sleep_for(std::chrono::milliseconds(slice));
        slept += slice;
      }
    }
  });
}

void MetricsCollector::stop() {
  running_.store(false, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

std::uint64_t MetricsCollector::elapsed_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::uint64_t MetricsCollector::scrapes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return scrapes_;
}

obs::ClusterSample MetricsCollector::last_sample() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_sample_;
}

obs::HealthVerdict MetricsCollector::last_verdict() const {
  return recorder_.last_verdict();
}

void MetricsCollector::write_top(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const obs::ClusterSample& s = last_sample_;
  const obs::HealthVerdict v = recorder_.last_verdict();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "[rnbtop] t=%.3fs up=%u/%u txns/s=%.1f items/s=%.1f "
                "p50=%.0fus p99=%.0fus cov=%.3f max/mean=%.3f score=%.1f\n",
                static_cast<double>(s.t_us) / 1e6, s.servers_up,
                s.servers_total, s.txns_per_s, s.items_per_s, s.p50_us,
                s.p99_us, v.load_cov, v.load_max_mean, v.score);
  os << buf;
  const double mean =
      s.servers_up > 0 ? s.txns_per_s / static_cast<double>(s.servers_up) : 0.0;
  for (std::size_t i = 0; i < s.server_txns_per_s.size(); ++i) {
    if (i < s.up.size() && s.up[i] == 0) {
      std::snprintf(buf, sizeof(buf), "  s%zu DOWN\n", i);
      os << buf;
      continue;
    }
    const double share =
        s.txns_per_s > 0.0 ? 100.0 * s.server_txns_per_s[i] / s.txns_per_s : 0.0;
    const int bars =
        mean > 0.0
            ? std::clamp(
                  static_cast<int>(10.0 * s.server_txns_per_s[i] / mean + 0.5),
                  0, 40)
            : 0;
    std::snprintf(buf, sizeof(buf), "  s%zu %8.1f txns/s %5.1f%% %.*s\n", i,
                  s.server_txns_per_s[i], share, bars,
                  "||||||||||||||||||||||||||||||||||||||||");
    os << buf;
  }
  for (const obs::ShardLoad& h : v.hot_shards) {
    std::snprintf(buf, sizeof(buf),
                  "  HOT shard s%u/%u contended=%.1f/s acquisitions=%.1f/s\n",
                  h.server, h.shard, h.contended_per_s, h.acquisitions_per_s);
    os << buf;
  }
  if (s.elastic_epoch > 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "  elastic epoch=%.0f %s scanned=%.0f copied=%.0f "
                  "pinned_moved=%.0f\n",
                  s.elastic_epoch, s.migration_active ? "MIGRATING" : "idle",
                  s.migration_entries_scanned, s.migration_replicas_copied,
                  s.migration_pinned_moved);
    os << buf;
  }
}

}  // namespace rnb::dserve
