// ServerGroup: boot a live multi-server kv fleet under RnB placement.
//
// The simulator's RnbCluster owns N TwoClassStore servers; this is its
// wire counterpart: N mini-memcached servers, each an overbooked two-class
// sharded store (pinned distinguished copies outside the byte budget,
// evictable replica class inside it — kv/memtable.hpp), reachable either
// in-process (deterministic loopback, no kernel in the path) or over real
// TCP sockets (thread-per-connection servers on loopback ports).
//
// load() installs a key set through the same deterministic placement the
// simulators use: every distinguished copy pinned on its replica-0 server
// (the paper's "same amount of memory the original system had"), replica
// copies either pre-installed (unlimited-memory regime, Fig. 6) or left
// cold for multi-get write-backs to fill (limited regime, Fig. 8).
//
// connect() hands each client worker its own transport — per-server TCP
// connections or a thin forwarder onto the shared in-process fleet —
// optionally wrapped in faultsim's fault-injecting decorator, so
// crash/restore schedules run against real servers with real bytes on the
// wire.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dserve/cluster_view.hpp"
#include "elastic/epoch.hpp"
#include "faultsim/fault_transport.hpp"
#include "kv/kv_transport.hpp"
#include "kv/tcp.hpp"
#include "kv/transport.hpp"

namespace rnb::dserve {

/// How client bytes reach the servers.
enum class GroupWire {
  kLoopback,  // in-process, deterministic, no kernel in the path
  kTcp,       // real sockets on 127.0.0.1, thread-per-connection servers
};

struct ServerGroupConfig {
  ServerId num_servers = 4;
  GroupWire wire = GroupWire::kLoopback;
  /// Serving core for kTcp servers: blocking thread-per-connection or the
  /// epoll reactor (kv/reactor.hpp). Ignored for kLoopback.
  kv::ServerModel server_model = kv::ServerModel::kThreadPerConnection;
  /// Evictable-byte budget per server — the replica class. Pinned
  /// distinguished copies live outside the budget (kv/memtable.hpp), so
  /// this is exactly the paper's "extra" memory knob. 0 = unlimited.
  std::size_t bytes_per_server = 0;
  /// Striped-lock shards per server engine; 0 picks a power of two from
  /// the hardware thread count.
  std::size_t shards_per_server = 0;
  /// Placement + health-view parameters shared by every client.
  ClusterViewConfig view;
  /// faultsim spec (faultsim/fault_spec.hpp grammar) applied to every
  /// connection made after construction; "" = clean wire.
  std::string fault_spec;
  /// Elastic membership. 0 = static fleet (the historical mode). Nonzero
  /// sets the fleet *capacity* (must be >= num_servers): server ids
  /// [0, num_servers) boot as the members of ring epoch 1, ids up to
  /// max_servers may join later via start_server() + a
  /// MembershipController. Placement then comes from a versioned
  /// elastic::MemberRing — `view.placement` is ignored, though
  /// `view.replication` and `view.placement_seed` still apply.
  ServerId max_servers = 0;
  /// Replica placement scheme for the elastic ring (the movement-cost
  /// ablation knob: RCH vnode ring vs multi-probe).
  elastic::RingScheme ring_scheme = elastic::RingScheme::kRch;
};

/// A client worker's connection to the group: the wire transport (owned),
/// optionally wrapped in a fault-injecting decorator. One per thread, like
/// every other KvTransport in the tree.
class GroupConnection final : public kv::KvTransport {
 public:
  GroupConnection(std::unique_ptr<kv::KvTransport> wire,
                  const faultsim::FaultSpec* faults);

  ServerId num_servers() const noexcept override {
    return wire_->num_servers();
  }

  kv::TransportResult roundtrip(ServerId s, std::string_view request,
                                std::string& response) override {
    return top_->roundtrip(s, request, response);
  }

  /// The fault decorator, when the group injects faults (else nullptr) —
  /// benches read per-connection fault stats here.
  const faultsim::FaultInjectingTransport* faults() const noexcept {
    return faults_.get();
  }

 private:
  std::unique_ptr<kv::KvTransport> wire_;
  std::unique_ptr<faultsim::FaultInjectingTransport> faults_;
  kv::KvTransport* top_;  // faults_ if present, else wire_
};

class ServerGroup {
 public:
  explicit ServerGroup(const ServerGroupConfig& config);
  ~ServerGroup();

  ServerGroup(const ServerGroup&) = delete;
  ServerGroup& operator=(const ServerGroup&) = delete;

  const ServerGroupConfig& config() const noexcept { return config_; }
  /// Servers booted as epoch-1 members (the static fleet size). Elastic
  /// groups may serve from more or fewer afterwards — see capacity() and
  /// the epoch store's current members.
  ServerId num_servers() const noexcept { return config_.num_servers; }

  /// Highest server id the group can ever address, plus one. Equals
  /// num_servers() for static groups, config.max_servers for elastic ones.
  ServerId capacity() const noexcept {
    return config_.max_servers == 0 ? config_.num_servers
                                    : config_.max_servers;
  }

  bool elastic() const noexcept { return epochs_ != nullptr; }

  /// The membership history (elastic groups only). A MembershipController
  /// drives transitions against this store over a group connection.
  elastic::EpochStore& epochs() {
    RNB_REQUIRE(epochs_ != nullptr);
    return *epochs_;
  }

  /// Boot (kTcp: bind + spawn; kLoopback: activate the pre-built engine)
  /// server `s`, configured at the current epoch. Elastic groups only.
  /// Call before MembershipController::join(s); the server holds no data
  /// and receives no client traffic until the join commits. TCP ids are
  /// dense: `s` must be the next unbooted index.
  void start_server(ServerId s);

  /// Stop serving from `s`: connections break (kTcp) or roundtrips report
  /// kServerDown (kLoopback). Call after MembershipController::leave(s)
  /// drained it — or before, to simulate a crash-stop.
  void stop_server(ServerId s);

  /// True while `s` is booted and serving.
  bool server_active(ServerId s) const noexcept {
    return s < capacity() && active_[s].load(std::memory_order_relaxed);
  }

  /// The shared topology + health view all clients plan covers against.
  ClusterView& view() noexcept { return view_; }
  const ClusterView& view() const noexcept { return view_; }

  /// Direct engine access for tests and stats scrapes (not during load).
  kv::ShardedKvServer& server(ServerId s);

  /// TCP listen port of server `s` (kTcp wire only).
  std::uint16_t port(ServerId s) const;

  /// Wire-level server `s` — connection counters, accept errors — for
  /// soak tests and health scrapes (kTcp wire only).
  kv::WireServer& wire_server(ServerId s);

  /// A fresh client transport: TCP connections or a loopback forwarder,
  /// fault-wrapped when the config carries a spec. Thread-compatible: each
  /// worker calls connect() once and keeps its connection.
  std::unique_ptr<GroupConnection> connect();

  struct LoadStats {
    std::uint64_t keys = 0;      // distinct keys installed
    std::uint64_t pinned = 0;    // distinguished copies stored (pinned)
    std::uint64_t replicas = 0;  // replica copies stored (evictable)
    std::uint64_t rejected = 0;  // SERVER_ERROR acks (budget too small)
  };

  /// Install `keys` through the placement: distinguished copy pinned on
  /// its replica-0 server; when `preinstall_replicas`, every further
  /// logical replica is stored evictable (unlimited-memory regime) —
  /// otherwise replicas start cold and are filled by client write-backs
  /// (limited regime). Runs on a clean internal connection: preload never
  /// sees injected faults, mirroring the simulators' populate step.
  LoadStats load(std::span<const std::string> keys,
                 const std::function<std::string(std::string_view)>& value_of,
                 bool preinstall_replicas);

  /// Paper Section III-E sizing: evictable replica-class bytes per server
  /// when the fleet's total memory is `relative_memory` copies of the data
  /// (>= 1.0; 1.0 = no replica space). Entry cost mirrors the MemTable's
  /// accounting (key + value + fixed overhead).
  static std::size_t replica_budget(std::uint64_t num_items,
                                    std::size_t key_bytes,
                                    std::size_t value_bytes,
                                    double relative_memory,
                                    ServerId num_servers);

 private:
  /// An unfaulted wire transport (load() and connect() both build on it).
  std::unique_ptr<kv::KvTransport> make_wire();

  ServerGroupConfig config_;
  faultsim::FaultSpec faults_;
  bool inject_faults_ = false;
  // Exactly one of the fleets exists, per config_.wire.
  std::unique_ptr<kv::ShardedLoopbackTransport> loopback_;
  std::unique_ptr<kv::TcpFleet> tcp_;
  /// Membership history; null for static groups. Declared before view_ —
  /// the view's construction captures the initial epoch snapshot.
  std::unique_ptr<elastic::EpochStore> epochs_;
  /// Per-slot serving flag, sized to capacity(). Loopback engines exist
  /// for every slot up front and are gated here; TCP servers boot lazily.
  std::vector<std::atomic<bool>> active_;
  ClusterView view_;
};

}  // namespace rnb::dserve
