// KvClusterClient: the RnB read/write strategy against a live ServerGroup.
//
// This is RnbKvClient's cover/bundle/recover pipeline re-based onto the
// shared ClusterView: placement comes from the view (one policy object for
// the whole process instead of one per client), and covers are planned
// over *surviving* replicas — a server that ate every attempt of a bundled
// get is marked down in the view, so the next thousand requests from every
// worker route around it instead of each burning a retry budget
// rediscovering the crash. Down marks expire in view-op time and the next
// cover probes the server; a success clears the mark (restore), a failure
// renews it.
//
// The failure machinery (bounded retries, decorrelated-jitter backoff,
// quantile hedging, virtual deadlines) is the shared KvExchange engine
// (kv/failure_policy.hpp), and every frame carries the ambient `@trace`
// tag, so multi-server runs stitch into the same client→server span trees
// the single-server path produces.
//
// Elastic views add stale-view tolerance: each operation captures the
// view's epoch once, tags every frame with it, and treats a WRONG_EPOCH
// bounce as "my ring is old" rather than a server failure — the operation
// refreshes the ring (the controller publishes it before bumping servers,
// so the newer ring is always there) and re-plans the unsatisfied keys in
// a recover round. Static views carry epoch 0 and never tag.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dserve/cluster_view.hpp"
#include "kv/failure_policy.hpp"
#include "kv/kv_transport.hpp"
#include "kv/protocol.hpp"

namespace rnb::dserve {

struct KvClusterClientConfig {
  /// Replica write-back after a fallback hit (Section III-C2 write rule).
  bool write_back_misses = true;
  /// Hitchhiking (Section III-C2): piggyback covered keys onto
  /// transactions already visiting a server that holds one of their
  /// replicas.
  bool hitchhiking = false;
  /// Retry / hedging / deadline policy; defaults are inert on a clean
  /// transport.
  kv::KvFailurePolicy failure;
};

class KvClusterClient {
 public:
  /// One client per worker thread, all sharing one ClusterView. The
  /// transport is this worker's own connection (ServerGroup::connect()).
  KvClusterClient(kv::KvTransport& transport, ClusterView& view,
                  const KvClusterClientConfig& config);

  /// Store `value` on every logical replica (replica 0 pinned). Returns
  /// the number of STORED acks.
  std::uint32_t set(std::string_view key, std::string_view value);

  /// Single-key read: distinguished copy first, degrading through the
  /// remaining replicas when it is unreachable. This is also the per-item
  /// baseline the multi-get-hole bench compares bundling against.
  std::optional<std::string> get(std::string_view key);

  struct MultiGetResult {
    std::unordered_map<std::string, std::string> values;
    /// Keys found on no reachable server.
    std::vector<std::string> missing;
    std::uint32_t round1_transactions = 0;
    std::uint32_t round2_transactions = 0;
    std::uint32_t recover_transactions = 0;
    std::uint32_t hitchhiker_keys = 0;
    /// This operation's slice of the failure counters.
    std::uint32_t retries = 0;
    std::uint32_t hedged_sends = 0;
    /// Servers newly marked down by this operation.
    std::uint32_t servers_marked_down = 0;
    /// Ring refreshes after WRONG_EPOCH bounces (elastic views only).
    std::uint32_t epoch_replans = 0;
    bool deadline_missed = false;

    std::uint32_t transactions() const noexcept {
      return round1_transactions + round2_transactions +
             recover_transactions;
    }
  };

  /// Fetch all keys with RnB bundling over surviving replicas.
  MultiGetResult multi_get(std::span<const std::string> keys);

  /// Delete every replica (distinguished last, so concurrent fallback
  /// readers never outlive it). True if the distinguished copy existed.
  bool remove(std::string_view key);

  ClusterView& view() noexcept { return view_; }
  const kv::KvFailureStats& failure_stats() const noexcept {
    return exchange_.stats();
  }

 private:
  bool exchange(ServerId server, double& elapsed,
                const std::function<bool(const std::string&)>& valid = {},
                bool allow_hedge = true);
  /// `stale`, when given, is set instead of returning values if the server
  /// bounced the frame with WRONG_EPOCH (the bounce is a healthy answer:
  /// never retried, never a down mark — the caller refreshes and re-plans).
  std::optional<std::vector<kv::Value>> exchange_values(
      ServerId server, double& elapsed, bool* stale = nullptr);
  /// Tag the pending request with the operation's epoch (no-op for 0).
  void tag_epoch(std::uint64_t epoch);

  kv::KvTransport& transport_;
  ClusterView& view_;
  KvClusterClientConfig config_;
  // Reused I/O buffers; one client per thread, like RnbKvClient.
  std::string request_;
  std::string response_;
  kv::KvExchange exchange_;
};

}  // namespace rnb::dserve
