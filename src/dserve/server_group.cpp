#include "dserve/server_group.hpp"

#include <limits>

#include "common/error.hpp"
#include "kv/protocol.hpp"

namespace rnb::dserve {
namespace {

// MemTable budgets bound *evictable* bytes only, so "unlimited" is just a
// budget nothing realistic reaches.
constexpr std::size_t kUnlimitedBudget = std::size_t{1} << 44;

// Mirrors MemTable::entry_cost's fixed overhead (kv/memtable.hpp): item
// header + hash chain pointers. Kept in sync by ServerGroupTest.
constexpr std::size_t kEntryOverhead = 48;

/// Non-owning forwarder onto the group's shared in-process fleet, so every
/// loopback GroupConnection can own its transport like a TCP one does.
class LoopbackForwarder final : public kv::KvTransport {
 public:
  explicit LoopbackForwarder(kv::ShardedLoopbackTransport& fleet)
      : fleet_(fleet) {}

  ServerId num_servers() const noexcept override {
    return fleet_.num_servers();
  }

  kv::TransportResult roundtrip(ServerId s, std::string_view request,
                                std::string& response) override {
    return fleet_.roundtrip(s, request, response);
  }

 private:
  kv::ShardedLoopbackTransport& fleet_;
};

}  // namespace

GroupConnection::GroupConnection(std::unique_ptr<kv::KvTransport> wire,
                                 const faultsim::FaultSpec* faults)
    : wire_(std::move(wire)) {
  if (faults != nullptr) {
    faults_ = std::make_unique<faultsim::FaultInjectingTransport>(
        *wire_, faultsim::FaultSchedule(*faults, wire_->num_servers()));
    top_ = faults_.get();
  } else {
    top_ = wire_.get();
  }
}

ServerGroup::ServerGroup(const ServerGroupConfig& config)
    : config_(config), view_(config.num_servers, config.view) {
  RNB_REQUIRE(config.num_servers > 0);
  const std::size_t budget = config_.bytes_per_server == 0
                                 ? kUnlimitedBudget
                                 : config_.bytes_per_server;
  if (config_.wire == GroupWire::kLoopback) {
    loopback_ = std::make_unique<kv::ShardedLoopbackTransport>(
        config_.num_servers, budget, config_.shards_per_server);
  } else {
    tcp_ = std::make_unique<kv::TcpFleet>(config_.num_servers, budget,
                                          config_.shards_per_server,
                                          config_.server_model);
  }
  if (!config_.fault_spec.empty()) {
    std::string error;
    const auto spec = faultsim::parse_fault_spec(config_.fault_spec, &error);
    RNB_REQUIRE(spec.has_value() && "fault_spec must parse");
    faults_ = *spec;
    inject_faults_ = faults_.any();
  }
}

ServerGroup::~ServerGroup() = default;

kv::ShardedKvServer& ServerGroup::server(ServerId s) {
  RNB_REQUIRE(s < config_.num_servers);
  return loopback_ != nullptr ? loopback_->server(s) : tcp_->server(s);
}

std::uint16_t ServerGroup::port(ServerId s) const {
  RNB_REQUIRE(tcp_ != nullptr && s < config_.num_servers);
  return tcp_->port(s);
}

kv::WireServer& ServerGroup::wire_server(ServerId s) {
  RNB_REQUIRE(tcp_ != nullptr && s < config_.num_servers);
  return tcp_->wire(s);
}

std::unique_ptr<kv::KvTransport> ServerGroup::make_wire() {
  if (loopback_ != nullptr)
    return std::make_unique<LoopbackForwarder>(*loopback_);
  return std::make_unique<kv::TcpClientTransport>(tcp_->ports());
}

std::unique_ptr<GroupConnection> ServerGroup::connect() {
  return std::make_unique<GroupConnection>(
      make_wire(), inject_faults_ ? &faults_ : nullptr);
}

ServerGroup::LoadStats ServerGroup::load(
    std::span<const std::string> keys,
    const std::function<std::string(std::string_view)>& value_of,
    bool preinstall_replicas) {
  const std::unique_ptr<kv::KvTransport> wire = make_wire();
  LoadStats stats;
  std::string request;
  std::string response;
  for (const std::string& key : keys) {
    const std::string value = value_of(key);
    const std::vector<ServerId> servers = view_.replicas(key);
    const std::size_t copies = preinstall_replicas ? servers.size() : 1;
    ++stats.keys;
    for (std::size_t r = 0; r < copies; ++r) {
      request.clear();
      kv::encode_set(key, value, /*pin=*/r == 0, request);
      wire->roundtrip(servers[r], request, response);
      if (kv::parse_simple(response) == "STORED")
        ++(r == 0 ? stats.pinned : stats.replicas);
      else
        ++stats.rejected;
    }
  }
  return stats;
}

std::size_t ServerGroup::replica_budget(std::uint64_t num_items,
                                        std::size_t key_bytes,
                                        std::size_t value_bytes,
                                        double relative_memory,
                                        ServerId num_servers) {
  RNB_REQUIRE(relative_memory >= 1.0 && num_servers > 0);
  const double entry =
      static_cast<double>(key_bytes + value_bytes + kEntryOverhead);
  const double total =
      (relative_memory - 1.0) * static_cast<double>(num_items) * entry;
  return static_cast<std::size_t>(total / static_cast<double>(num_servers));
}

}  // namespace rnb::dserve
