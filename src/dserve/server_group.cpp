#include "dserve/server_group.hpp"

#include <chrono>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "common/error.hpp"
#include "kv/protocol.hpp"

namespace rnb::dserve {
namespace {

// MemTable budgets bound *evictable* bytes only, so "unlimited" is just a
// budget nothing realistic reaches.
constexpr std::size_t kUnlimitedBudget = std::size_t{1} << 44;

// Mirrors MemTable::entry_cost's fixed overhead (kv/memtable.hpp): item
// header + hash chain pointers. Kept in sync by ServerGroupTest.
constexpr std::size_t kEntryOverhead = 48;

/// Non-owning forwarder onto the group's shared in-process fleet, so every
/// loopback GroupConnection can own its transport like a TCP one does.
class LoopbackForwarder final : public kv::KvTransport {
 public:
  explicit LoopbackForwarder(kv::ShardedLoopbackTransport& fleet)
      : fleet_(fleet) {}

  ServerId num_servers() const noexcept override {
    return fleet_.num_servers();
  }

  kv::TransportResult roundtrip(ServerId s, std::string_view request,
                                std::string& response) override {
    return fleet_.roundtrip(s, request, response);
  }

 private:
  kv::ShardedLoopbackTransport& fleet_;
};

/// Loopback forwarder for elastic groups: every capacity slot has an
/// engine, but only active slots serve — a stopped slot answers
/// kServerDown exactly like a crashed TCP peer.
class ElasticLoopbackForwarder final : public kv::KvTransport {
 public:
  ElasticLoopbackForwarder(kv::ShardedLoopbackTransport& fleet,
                           std::span<const std::atomic<bool>> active)
      : fleet_(fleet), active_(active) {}

  ServerId num_servers() const noexcept override {
    return fleet_.num_servers();
  }

  kv::TransportResult roundtrip(ServerId s, std::string_view request,
                                std::string& response) override {
    if (!active_[s].load(std::memory_order_relaxed)) {
      response.clear();
      return {kv::TransportStatus::kServerDown, 0.0};
    }
    return fleet_.roundtrip(s, request, response);
  }

 private:
  kv::ShardedLoopbackTransport& fleet_;
  std::span<const std::atomic<bool>> active_;
};

/// TCP transport for elastic groups. Unlike TcpClientTransport's fixed
/// endpoint set, slots are the fleet *capacity*: a slot connects lazily
/// the first time it is addressed (a joiner's port only exists after
/// start_server), and a dead or stopped peer reports kServerDown instead
/// of throwing — elastic clients must survive servers leaving.
class ElasticTcpTransport final : public kv::KvTransport {
 public:
  ElasticTcpTransport(kv::TcpFleet& fleet,
                      std::span<const std::atomic<bool>> active,
                      ServerId capacity)
      : fleet_(fleet), active_(active), slots_(capacity) {}

  ServerId num_servers() const noexcept override {
    return static_cast<ServerId>(slots_.size());
  }

  kv::TransportResult roundtrip(ServerId s, std::string_view request,
                                std::string& response) override {
    response.clear();
    if (s >= slots_.size()) return {kv::TransportStatus::kServerDown, 0.0};
    Slot& slot = slots_[s];
    const std::lock_guard lock(slot.mu);
    if (!active_[s].load(std::memory_order_relaxed)) {
      slot.connection.reset();
      return {kv::TransportStatus::kServerDown, 0.0};
    }
    try {
      if (slot.connection == nullptr) {
        if (s >= fleet_.num_servers())
          return {kv::TransportStatus::kServerDown, 0.0};
        slot.connection =
            std::make_unique<kv::TcpKvConnection>(fleet_.port(s));
      }
      const auto start = std::chrono::steady_clock::now();
      slot.connection->roundtrip(request, response);
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - start;
      return {kv::TransportStatus::kOk, wall.count()};
    } catch (const std::runtime_error&) {
      // Connect refused or peer closed mid-exchange (a leaving server);
      // drop the connection so a later attempt re-dials fresh.
      slot.connection.reset();
      response.clear();
      return {kv::TransportStatus::kServerDown, 0.0};
    }
  }

 private:
  struct Slot {
    std::mutex mu;
    std::unique_ptr<kv::TcpKvConnection> connection;
  };

  kv::TcpFleet& fleet_;
  std::span<const std::atomic<bool>> active_;
  std::vector<Slot> slots_;
};

elastic::MemberRingConfig ring_config(const ServerGroupConfig& config) {
  elastic::MemberRingConfig rc;
  rc.scheme = config.ring_scheme;
  rc.replication = config.view.replication;
  rc.seed = config.view.placement_seed;
  return rc;
}

std::unique_ptr<elastic::EpochStore> make_epochs(
    const ServerGroupConfig& config) {
  if (config.max_servers == 0) return nullptr;
  RNB_REQUIRE(config.max_servers >= config.num_servers);
  std::vector<ServerId> members(config.num_servers);
  for (ServerId s = 0; s < config.num_servers; ++s) members[s] = s;
  return std::make_unique<elastic::EpochStore>(ring_config(config),
                                               std::move(members));
}

}  // namespace

GroupConnection::GroupConnection(std::unique_ptr<kv::KvTransport> wire,
                                 const faultsim::FaultSpec* faults)
    : wire_(std::move(wire)) {
  if (faults != nullptr) {
    faults_ = std::make_unique<faultsim::FaultInjectingTransport>(
        *wire_, faultsim::FaultSchedule(*faults, wire_->num_servers()));
    top_ = faults_.get();
  } else {
    top_ = wire_.get();
  }
}

ServerGroup::ServerGroup(const ServerGroupConfig& config)
    : config_(config),
      epochs_(make_epochs(config)),
      active_(config.max_servers == 0 ? config.num_servers
                                      : config.max_servers),
      view_(config.max_servers == 0 ? config.num_servers : config.max_servers,
            config.view, epochs_ != nullptr ? epochs_->current() : nullptr) {
  RNB_REQUIRE(config.num_servers > 0);
  const std::size_t budget = config_.bytes_per_server == 0
                                 ? kUnlimitedBudget
                                 : config_.bytes_per_server;
  if (config_.wire == GroupWire::kLoopback) {
    // Elastic loopback fleets build every capacity slot's engine up front
    // (cheap: empty tables) and gate serving on active_; TCP slots boot
    // lazily in start_server.
    loopback_ = std::make_unique<kv::ShardedLoopbackTransport>(
        capacity(), budget, config_.shards_per_server);
  } else {
    tcp_ = std::make_unique<kv::TcpFleet>(config_.num_servers, budget,
                                          config_.shards_per_server,
                                          config_.server_model);
  }
  for (ServerId s = 0; s < config_.num_servers; ++s) {
    active_[s].store(true, std::memory_order_relaxed);
    if (elastic()) server(s).set_epoch(epochs_->epoch());
  }
  if (!config_.fault_spec.empty()) {
    std::string error;
    const auto spec = faultsim::parse_fault_spec(config_.fault_spec, &error);
    RNB_REQUIRE(spec.has_value() && "fault_spec must parse");
    faults_ = *spec;
    inject_faults_ = faults_.any();
  }
}

ServerGroup::~ServerGroup() = default;

void ServerGroup::start_server(ServerId s) {
  RNB_REQUIRE(elastic() && s < capacity());
  if (tcp_ != nullptr && s >= tcp_->num_servers()) {
    RNB_REQUIRE(s == tcp_->num_servers() &&
                "TCP server ids boot densely; start the next index");
    const std::size_t budget = config_.bytes_per_server == 0
                                   ? kUnlimitedBudget
                                   : config_.bytes_per_server;
    tcp_->add_server(budget, config_.shards_per_server, config_.server_model);
  }
  server(s).set_epoch(epochs_->epoch());
  active_[s].store(true, std::memory_order_relaxed);
}

void ServerGroup::stop_server(ServerId s) {
  RNB_REQUIRE(s < capacity());
  active_[s].store(false, std::memory_order_relaxed);
  if (tcp_ != nullptr && s < tcp_->num_servers()) tcp_->wire(s).shutdown();
}

kv::ShardedKvServer& ServerGroup::server(ServerId s) {
  if (loopback_ != nullptr) {
    RNB_REQUIRE(s < loopback_->num_servers());
    return loopback_->server(s);
  }
  RNB_REQUIRE(s < tcp_->num_servers());
  return tcp_->server(s);
}

std::uint16_t ServerGroup::port(ServerId s) const {
  RNB_REQUIRE(tcp_ != nullptr && s < tcp_->num_servers());
  return tcp_->port(s);
}

kv::WireServer& ServerGroup::wire_server(ServerId s) {
  RNB_REQUIRE(tcp_ != nullptr && s < tcp_->num_servers());
  return tcp_->wire(s);
}

std::unique_ptr<kv::KvTransport> ServerGroup::make_wire() {
  if (elastic()) {
    if (loopback_ != nullptr)
      return std::make_unique<ElasticLoopbackForwarder>(
          *loopback_, std::span<const std::atomic<bool>>(active_));
    return std::make_unique<ElasticTcpTransport>(
        *tcp_, std::span<const std::atomic<bool>>(active_), capacity());
  }
  if (loopback_ != nullptr)
    return std::make_unique<LoopbackForwarder>(*loopback_);
  return std::make_unique<kv::TcpClientTransport>(tcp_->ports());
}

std::unique_ptr<GroupConnection> ServerGroup::connect() {
  return std::make_unique<GroupConnection>(
      make_wire(), inject_faults_ ? &faults_ : nullptr);
}

ServerGroup::LoadStats ServerGroup::load(
    std::span<const std::string> keys,
    const std::function<std::string(std::string_view)>& value_of,
    bool preinstall_replicas) {
  const std::unique_ptr<kv::KvTransport> wire = make_wire();
  LoadStats stats;
  std::string request;
  std::string response;
  for (const std::string& key : keys) {
    const std::string value = value_of(key);
    const std::vector<ServerId> servers = view_.replicas(key);
    const std::size_t copies = preinstall_replicas ? servers.size() : 1;
    ++stats.keys;
    for (std::size_t r = 0; r < copies; ++r) {
      request.clear();
      kv::encode_set(key, value, /*pin=*/r == 0, request);
      wire->roundtrip(servers[r], request, response);
      if (kv::parse_simple(response) == "STORED")
        ++(r == 0 ? stats.pinned : stats.replicas);
      else
        ++stats.rejected;
    }
  }
  return stats;
}

std::size_t ServerGroup::replica_budget(std::uint64_t num_items,
                                        std::size_t key_bytes,
                                        std::size_t value_bytes,
                                        double relative_memory,
                                        ServerId num_servers) {
  RNB_REQUIRE(relative_memory >= 1.0 && num_servers > 0);
  const double entry =
      static_cast<double>(key_bytes + value_bytes + kEntryOverhead);
  const double total =
      (relative_memory - 1.0) * static_cast<double>(num_items) * entry;
  return static_cast<std::size_t>(total / static_cast<double>(num_servers));
}

}  // namespace rnb::dserve
