// Shared cluster topology and health view for the live serving tier.
//
// Every client worker planning a bundled multi-get needs the same two
// facts: where each key's replicas live (the deterministic placement the
// simulator validated — any client recomputes it from the key alone), and
// which servers are currently believed dead (so covers are planned over
// surviving replicas instead of burning a full retry budget per request).
// ClusterView holds both. Placement is immutable after construction;
// health is a lock-free per-server mark that any client thread may set
// when a bundled get exhausts its attempts and clear when a later probe
// succeeds.
//
// Health marks expire in *virtual* time: the view keeps a global operation
// counter (tick() once per client operation) and a down mark older than
// `reprobe_interval` ops stops being authoritative — the next cover may
// pick the server again, and the outcome of that probe either clears the
// mark or renews it. No wall clock is read, so fault-injected runs replay
// deterministically.
#pragma once

#include <atomic>
#include <limits>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/types.hpp"
#include "elastic/epoch.hpp"
#include "hashring/placement.hpp"

namespace rnb::dserve {

struct ClusterViewConfig {
  /// Logical replicas per item, distinguished copy included.
  std::uint32_t replication = 3;
  PlacementScheme placement = PlacementScheme::kRangedConsistentHash;
  std::uint64_t placement_seed = 1;
  /// Client operations a down mark stays authoritative before the server
  /// is offered to covers again (reprobe). Virtual time: the view's op
  /// counter, never a clock.
  std::uint64_t reprobe_interval = 256;
};

class ClusterView {
 public:
  /// Static view (the historical mode): placement over the fixed id range
  /// [0, num_servers). Pass `ring` to build an *elastic* view instead:
  /// placement then comes from versioned RingEpoch snapshots (install_ring
  /// publishes successors) and `num_servers` is the fleet *capacity* — the
  /// health arrays cover every id a future epoch may contain, so a member
  /// joining later needs no resize.
  ClusterView(ServerId num_servers, const ClusterViewConfig& config,
              std::shared_ptr<const elastic::RingEpoch> ring = nullptr)
      : config_(config),
        placement_(ring != nullptr
                       ? nullptr
                       : make_placement(config.placement, num_servers,
                                        config.replication,
                                        config.placement_seed)),
        ring_(std::move(ring)),
        down_since_(num_servers),
        last_up_(num_servers) {
    RNB_REQUIRE(num_servers > 0);
    for (auto& d : down_since_) d.store(kUp, std::memory_order_relaxed);
    for (auto& u : last_up_) u.store(0, std::memory_order_relaxed);
    if (ring_ != nullptr) RNB_REQUIRE(ring_->members().back() < num_servers);
  }

  /// Fleet capacity: every server id health marks (and transports) must
  /// accommodate. Equals the placement's server count in static mode; in
  /// elastic mode the current epoch's members are a subset of [0, this).
  ServerId num_servers() const noexcept {
    return static_cast<ServerId>(down_since_.size());
  }
  std::uint32_t replication() const {
    return placement_ != nullptr ? placement_->replication()
                                 : ring()->replication();
  }
  const ClusterViewConfig& config() const noexcept { return config_; }
  /// Static mode only (elastic views have no fixed placement).
  const PlacementPolicy& placement() const noexcept { return *placement_; }

  /// Elastic mode: the current ring snapshot (never null), or null for a
  /// static view. Clients capture one snapshot per operation and plan the
  /// whole cover against it, so a concurrent install_ring never splits an
  /// operation across two epochs.
  std::shared_ptr<const elastic::RingEpoch> ring() const {
    const std::lock_guard lock(ring_mu_);
    return ring_;
  }

  /// Publish a newer epoch (the membership controller, after migration).
  void install_ring(std::shared_ptr<const elastic::RingEpoch> ring) {
    RNB_REQUIRE(ring != nullptr);
    RNB_REQUIRE(ring->members().back() < num_servers());
    const std::lock_guard lock(ring_mu_);
    ring_ = std::move(ring);
  }

  /// The epoch clients tag requests with; 0 for a static view (no tag).
  std::uint64_t epoch() const {
    const std::lock_guard lock(ring_mu_);
    return ring_ != nullptr ? ring_->epoch() : 0;
  }

  bool elastic() const noexcept { return placement_ == nullptr; }

  /// Key -> item id, the same hash the wire clients use (kv/rnb_kv_client),
  /// so live placement agrees with everything validated in the simulator.
  static ItemId item_of(std::string_view key) noexcept {
    return fnv1a64(key);
  }

  /// Replica servers of `key` in replica order; [0] is the distinguished
  /// copy. Ignores health — callers filter with is_down() when planning.
  /// Elastic mode computes against the current ring snapshot; clients
  /// planning multi-key operations should capture ring() once instead.
  std::vector<ServerId> replicas(std::string_view key) const {
    if (placement_ != nullptr) return placement_->replicas(item_of(key));
    return ring()->replicas(item_of(key));
  }

  ServerId distinguished(std::string_view key) const {
    if (placement_ != nullptr)
      return placement_->distinguished(item_of(key));
    return ring()->replicas(item_of(key))[0];
  }

  /// Advance the view's virtual clock; call once per client operation.
  void tick() noexcept { ops_.fetch_add(1, std::memory_order_relaxed); }

  /// The current op count. Capture before an operation's first send and
  /// hand it back to mark_down() so a slow failing operation cannot
  /// overrule successes recorded while it was in flight.
  std::uint64_t ops() const noexcept {
    return ops_.load(std::memory_order_relaxed);
  }

  /// True while the server's down mark is younger than reprobe_interval.
  /// An expired mark reads as up — the next cover probes the server and
  /// the result either clears (mark_up) or renews (mark_down) the mark.
  bool is_down(ServerId s) const noexcept {
    const std::uint64_t d = down_since_[s].load(std::memory_order_relaxed);
    if (d == kUp) return false;
    return ops_.load(std::memory_order_relaxed) - d <
           config_.reprobe_interval;
  }

  /// True when any client currently holds a down mark on `s`, expired or
  /// not (a probe target keeps its mark until a success clears it).
  bool marked(ServerId s) const noexcept {
    return down_since_[s].load(std::memory_order_relaxed) != kUp;
  }

  /// Record that `s` ate every attempt of a transaction that began at view
  /// op `op_started` (from ops()). The mark is suppressed when some client
  /// recorded a success against `s` *after* this operation began: the
  /// failure is then stale evidence — typically a slow retry loop that
  /// started before the server recovered — and applying it would re-mark a
  /// healthy server the moment a reprobe had cleared it, skipping it for
  /// another full reprobe interval every time the interleaving recurred.
  /// (A stale mark_down that read last_up_ just before a concurrent
  /// mark_up stamps it can still land, but at most once: the mark expires
  /// and the stamp now filters any repeat.)
  void mark_down(ServerId s, std::uint64_t op_started) noexcept {
    if (last_up_[s].load(std::memory_order_relaxed) > op_started) return;
    down_since_[s].store(ops_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    down_marks_.fetch_add(1, std::memory_order_relaxed);
  }

  /// mark_down() stamped "now": never suppressed (no success can postdate
  /// an operation that begins at the current op count).
  void mark_down(ServerId s) noexcept { mark_down(s, ops()); }

  /// Record a successful transaction against `s`; clears any mark and
  /// stamps the success so stale in-flight failures cannot re-mark it.
  /// The strict comparison in mark_down keeps same-tick evidence live: a
  /// success and a failure within one view op never suppress each other,
  /// so a server dying mid-operation is still marked immediately.
  void mark_up(ServerId s) noexcept {
    // Stamp before clearing: once the mark is gone the stamp must already
    // filter the stale mark_down that raced us.
    last_up_[s].store(ops_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    if (down_since_[s].exchange(kUp, std::memory_order_relaxed) != kUp)
      recoveries_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Servers currently considered down (availability metric).
  ServerId down_count() const noexcept {
    ServerId n = 0;
    for (ServerId s = 0; s < num_servers(); ++s)
      if (is_down(s)) ++n;
    return n;
  }

  std::uint64_t down_marks() const noexcept {
    return down_marks_.load(std::memory_order_relaxed);
  }
  std::uint64_t recoveries() const noexcept {
    return recoveries_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kUp =
      std::numeric_limits<std::uint64_t>::max();

  ClusterViewConfig config_;
  std::unique_ptr<PlacementPolicy> placement_;  // null in elastic mode
  mutable std::mutex ring_mu_;
  std::shared_ptr<const elastic::RingEpoch> ring_;  // null in static mode
  std::atomic<std::uint64_t> ops_{0};
  std::vector<std::atomic<std::uint64_t>> down_since_;
  /// Op stamp of the latest mark_up per server (0 = never marked up).
  std::vector<std::atomic<std::uint64_t>> last_up_;
  std::atomic<std::uint64_t> down_marks_{0};
  std::atomic<std::uint64_t> recoveries_{0};
};

}  // namespace rnb::dserve
