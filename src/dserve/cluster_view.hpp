// Shared cluster topology and health view for the live serving tier.
//
// Every client worker planning a bundled multi-get needs the same two
// facts: where each key's replicas live (the deterministic placement the
// simulator validated — any client recomputes it from the key alone), and
// which servers are currently believed dead (so covers are planned over
// surviving replicas instead of burning a full retry budget per request).
// ClusterView holds both. Placement is immutable after construction;
// health is a lock-free per-server mark that any client thread may set
// when a bundled get exhausts its attempts and clear when a later probe
// succeeds.
//
// Health marks expire in *virtual* time: the view keeps a global operation
// counter (tick() once per client operation) and a down mark older than
// `reprobe_interval` ops stops being authoritative — the next cover may
// pick the server again, and the outcome of that probe either clears the
// mark or renews it. No wall clock is read, so fault-injected runs replay
// deterministically.
#pragma once

#include <atomic>
#include <limits>
#include <memory>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/hash.hpp"
#include "common/types.hpp"
#include "hashring/placement.hpp"

namespace rnb::dserve {

struct ClusterViewConfig {
  /// Logical replicas per item, distinguished copy included.
  std::uint32_t replication = 3;
  PlacementScheme placement = PlacementScheme::kRangedConsistentHash;
  std::uint64_t placement_seed = 1;
  /// Client operations a down mark stays authoritative before the server
  /// is offered to covers again (reprobe). Virtual time: the view's op
  /// counter, never a clock.
  std::uint64_t reprobe_interval = 256;
};

class ClusterView {
 public:
  ClusterView(ServerId num_servers, const ClusterViewConfig& config)
      : config_(config),
        placement_(make_placement(config.placement, num_servers,
                                  config.replication, config.placement_seed)),
        down_since_(num_servers) {
    RNB_REQUIRE(num_servers > 0);
    for (auto& d : down_since_) d.store(kUp, std::memory_order_relaxed);
  }

  ServerId num_servers() const noexcept { return placement_->num_servers(); }
  std::uint32_t replication() const noexcept {
    return placement_->replication();
  }
  const ClusterViewConfig& config() const noexcept { return config_; }
  const PlacementPolicy& placement() const noexcept { return *placement_; }

  /// Key -> item id, the same hash the wire clients use (kv/rnb_kv_client),
  /// so live placement agrees with everything validated in the simulator.
  static ItemId item_of(std::string_view key) noexcept {
    return fnv1a64(key);
  }

  /// Replica servers of `key` in replica order; [0] is the distinguished
  /// copy. Ignores health — callers filter with is_down() when planning.
  std::vector<ServerId> replicas(std::string_view key) const {
    return placement_->replicas(item_of(key));
  }

  ServerId distinguished(std::string_view key) const {
    return placement_->distinguished(item_of(key));
  }

  /// Advance the view's virtual clock; call once per client operation.
  void tick() noexcept { ops_.fetch_add(1, std::memory_order_relaxed); }

  /// True while the server's down mark is younger than reprobe_interval.
  /// An expired mark reads as up — the next cover probes the server and
  /// the result either clears (mark_up) or renews (mark_down) the mark.
  bool is_down(ServerId s) const noexcept {
    const std::uint64_t d = down_since_[s].load(std::memory_order_relaxed);
    if (d == kUp) return false;
    return ops_.load(std::memory_order_relaxed) - d <
           config_.reprobe_interval;
  }

  /// True when any client currently holds a down mark on `s`, expired or
  /// not (a probe target keeps its mark until a success clears it).
  bool marked(ServerId s) const noexcept {
    return down_since_[s].load(std::memory_order_relaxed) != kUp;
  }

  /// Record that `s` ate every attempt of a transaction just now.
  void mark_down(ServerId s) noexcept {
    down_since_[s].store(ops_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    down_marks_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Record a successful transaction against `s`; clears any mark.
  void mark_up(ServerId s) noexcept {
    if (down_since_[s].exchange(kUp, std::memory_order_relaxed) != kUp)
      recoveries_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Servers currently considered down (availability metric).
  ServerId down_count() const noexcept {
    ServerId n = 0;
    for (ServerId s = 0; s < num_servers(); ++s)
      if (is_down(s)) ++n;
    return n;
  }

  std::uint64_t down_marks() const noexcept {
    return down_marks_.load(std::memory_order_relaxed);
  }
  std::uint64_t recoveries() const noexcept {
    return recoveries_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kUp =
      std::numeric_limits<std::uint64_t>::max();

  ClusterViewConfig config_;
  std::unique_ptr<PlacementPolicy> placement_;
  std::atomic<std::uint64_t> ops_{0};
  std::vector<std::atomic<std::uint64_t>> down_since_;
  std::atomic<std::uint64_t> down_marks_{0};
  std::atomic<std::uint64_t> recoveries_{0};
};

}  // namespace rnb::dserve
