#include "dserve/cluster_client.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"
#include "obs/slow_log.hpp"
#include "obs/trace.hpp"
#include "setcover/cover.hpp"
#include "setcover/greedy.hpp"

namespace rnb::dserve {

using kv::Value;

KvClusterClient::KvClusterClient(kv::KvTransport& transport, ClusterView& view,
                                 const KvClusterClientConfig& config)
    : transport_(transport),
      view_(view),
      config_(config),
      exchange_(transport, config.failure) {
  // Elastic fleets size the transport to capacity; the view may know the
  // same capacity or (a static view over a subset) fewer servers.
  RNB_REQUIRE(transport.num_servers() >= view.num_servers());
}

bool KvClusterClient::exchange(
    ServerId server, double& elapsed,
    const std::function<bool(const std::string&)>& valid, bool allow_hedge) {
  const bool ok = exchange_.exchange(server, request_, response_, elapsed,
                                     valid, allow_hedge);
  if (ok && view_.marked(server)) view_.mark_up(server);
  return ok;
}

std::optional<std::vector<Value>> KvClusterClient::exchange_values(
    ServerId server, double& elapsed, bool* stale) {
  // A WRONG_EPOCH bounce is a well-formed response from a healthy server —
  // it must pass validity (retrying the same stale frame cannot help) and
  // must not be confused with a truncated VALUE block.
  const auto valid = [](const std::string& frame) {
    return kv::parse_values(frame, /*with_versions=*/false).has_value() ||
           kv::parse_wrong_epoch(frame).has_value();
  };
  if (!exchange(server, elapsed, valid)) return std::nullopt;
  if (kv::parse_wrong_epoch(response_).has_value()) {
    if (stale != nullptr) *stale = true;
    return std::nullopt;
  }
  return kv::parse_values(response_, /*with_versions=*/false);
}

void KvClusterClient::tag_epoch(std::uint64_t epoch) {
  kv::append_epoch_tag(request_, epoch);
}

std::uint32_t KvClusterClient::set(std::string_view key,
                                   std::string_view value) {
  view_.tick();
  const std::uint64_t op_started = view_.ops();
  double elapsed = 0.0;
  std::uint32_t stored = 0;
  // One bounded replan: a WRONG_EPOCH bounce means the view moved under
  // us; re-read epoch + placement once and redo the bounced writes (a
  // re-set is idempotent, so redoing acked replicas is harmless).
  for (int plan = 0; plan < 2; ++plan) {
    const std::uint64_t epoch = view_.epoch();
    const std::vector<ServerId> servers = view_.replicas(key);
    bool bounced = false;
    stored = 0;
    for (std::size_t r = 0; r < servers.size(); ++r) {
      if (r > 0 && exchange_.deadline_exceeded(elapsed)) {
        ++exchange_.stats().deadline_misses;
        return stored;
      }
      request_.clear();
      kv::encode_set(key, value, /*pin=*/r == 0, request_);
      tag_epoch(epoch);
      if (!exchange(servers[r], elapsed)) {
        view_.mark_down(servers[r], op_started);
        continue;
      }
      if (kv::parse_simple(response_) == "STORED")
        ++stored;
      else if (kv::parse_wrong_epoch(response_).has_value())
        bounced = true;
    }
    if (!bounced) break;
  }
  return stored;
}

std::optional<std::string> KvClusterClient::get(std::string_view key) {
  view_.tick();
  const std::uint64_t op_started = view_.ops();
  double elapsed = 0.0;
  // One bounded replan on a WRONG_EPOCH bounce, as in set().
  for (int plan = 0; plan < 2; ++plan) {
    const std::uint64_t epoch = view_.epoch();
    // Distinguished copy first (the paper's rule for unbundled fetches);
    // degrade through the remaining replicas when it is unreachable.
    const std::vector<ServerId> servers = view_.replicas(key);
    bool bounced = false;
    for (std::size_t r = 0; r < servers.size() && !bounced; ++r) {
      request_.clear();
      kv::encode_get({std::string(key)}, /*with_versions=*/false, request_);
      tag_epoch(epoch);
      bool stale = false;
      const auto values = exchange_values(servers[r], elapsed, &stale);
      if (values) {
        if (!values->empty()) return values->front().data;
        if (r == 0) return std::nullopt;  // distinguished miss: key absent
        continue;  // cold replica — keep degrading
      }
      if (stale) {
        bounced = true;
        break;
      }
      view_.mark_down(servers[r], op_started);
      if (exchange_.deadline_exceeded(elapsed)) {
        ++exchange_.stats().deadline_misses;
        return std::nullopt;
      }
    }
    if (!bounced) break;
  }
  return std::nullopt;
}

KvClusterClient::MultiGetResult KvClusterClient::multi_get(
    std::span<const std::string> keys) {
  view_.tick();
  const std::uint64_t op_started = view_.ops();
  // The whole cover is planned against one epoch; a WRONG_EPOCH bounce
  // strands the bundle's keys and the next recover round refreshes the
  // ring and re-plans them.
  std::uint64_t op_epoch = view_.epoch();
  // Root of the distributed trace for this operation; every transaction
  // and remote server span hangs off this span's trace id.
  obs::SpanScope req_span("request", "kv_client",
                          obs::SpanScope::Kind::kRoot);
  MultiGetResult result;

  // Deduplicate, first-appearance order.
  std::vector<std::string> items;
  {
    std::unordered_set<std::string_view> seen;
    for (const std::string& k : keys)
      if (seen.insert(k).second) items.push_back(k);
  }
  const std::size_t m = items.size();
  if (m == 0) return result;

  // Plan over surviving replicas: a server the view believes dead is not
  // a bundling candidate, so its crash costs this request nothing — the
  // difference between one client discovering a crash (retry budget) and
  // every client re-discovering it per request. A key whose replicas are
  // all marked down keeps its full list: probing a possibly-restored
  // server beats reporting the key unavailable without trying.
  CoverInstance instance;
  instance.candidates.resize(m);
  std::vector<std::vector<ServerId>> locations(m);
  for (std::size_t i = 0; i < m; ++i) {
    locations[i] = view_.replicas(items[i]);
    std::vector<ServerId> live;
    for (const ServerId s : locations[i])
      if (!view_.is_down(s)) live.push_back(s);
    instance.candidates[i] = live.empty() ? locations[i] : std::move(live);
  }
  const CoverResult cover = greedy_cover(instance);
  // Mutable: recover rounds re-assign items stranded on failed servers.
  std::vector<ServerId> assignment = cover.assignment;

  const kv::KvFailureStats before = exchange_.stats();
  double elapsed = 0.0;
  std::uint32_t waves = 0;
  std::unordered_set<ServerId> contacted;
  // Servers that ate every attempt of a bundled get this operation.
  std::unordered_set<ServerId> failed;
  // Items whose assigned bundle died (server failure or epoch bounce);
  // recover rounds re-plan exactly these.
  std::vector<bool> stranded(m, false);
  // Set when any bundle bounced WRONG_EPOCH: the next recover round
  // refreshes the ring before re-planning.
  bool stale_view = false;
  const auto out_of_time = [&]() {
    if (!exchange_.deadline_exceeded(elapsed)) return false;
    if (!result.deadline_missed) {
      result.deadline_missed = true;
      ++exchange_.stats().deadline_misses;
    }
    return true;
  };
  const auto unreachable = [&](ServerId s) {
    return failed.contains(s) || view_.is_down(s);
  };

  // Round 1 bundles.
  std::unordered_map<ServerId, std::vector<std::size_t>> by_server;
  for (std::size_t i = 0; i < m; ++i)
    by_server[assignment[i]].push_back(i);

  // Hitchhikers: covered keys appended to transactions whose server also
  // holds one of their replicas (zero extra transactions).
  std::unordered_map<ServerId, std::vector<std::size_t>> hitchhikers;
  if (config_.hitchhiking) {
    std::unordered_set<ServerId> in_plan(cover.servers_used.begin(),
                                         cover.servers_used.end());
    for (std::size_t i = 0; i < m; ++i)
      for (const ServerId s : locations[i])
        if (s != assignment[i] && in_plan.contains(s))
          hitchhikers[s].push_back(i);
  }

  std::vector<bool> satisfied(m, false);
  std::unordered_map<std::string_view, std::size_t> index_of;
  for (std::size_t i = 0; i < m; ++i) index_of.emplace(items[i], i);

  // One bundled get under the failure policy; a server that eats every
  // attempt is marked down in the shared view.
  const auto bundled_get = [&](ServerId s,
                               const std::vector<std::size_t>& idxs,
                               const std::vector<std::size_t>* extra,
                               std::uint32_t& txn_counter) {
    std::vector<std::string> bundle;
    bundle.reserve(idxs.size());
    for (const std::size_t i : idxs) bundle.push_back(items[i]);
    if (extra != nullptr)
      for (const std::size_t i : *extra) {
        bundle.push_back(items[i]);
        ++result.hitchhiker_keys;
      }
    request_.clear();
    kv::encode_get(bundle, /*with_versions=*/false, request_);
    tag_epoch(op_epoch);
    ++txn_counter;
    contacted.insert(s);
    bool stale = false;
    const auto values = exchange_values(s, elapsed, &stale);
    if (!values) {
      for (const std::size_t i : idxs) stranded[i] = true;
      if (stale) {
        // Healthy server, old ring: strand the keys for a re-plan but
        // leave the server's health alone.
        stale_view = true;
        return;
      }
      failed.insert(s);
      view_.mark_down(s, op_started);
      ++result.servers_marked_down;
      return;
    }
    for (const std::size_t i : idxs) stranded[i] = false;
    for (const Value& v : *values) {
      result.values[v.key] = v.data;
      satisfied[index_of.at(v.key)] = true;
    }
  };

  {
    ++waves;
    obs::SpanScope wave_span("wave", "kv_client");
    wave_span.note("kind", "round1");
    wave_span.arg("transactions",
                  static_cast<std::int64_t>(cover.servers_used.size()));
    for (const ServerId s : cover.servers_used) {
      if (out_of_time()) break;
      const auto hit_it = hitchhikers.find(s);
      bundled_get(s, by_server.at(s),
                  hit_it == hitchhikers.end() ? nullptr : &hit_it->second,
                  result.round1_transactions);
    }
  }

  // Recover rounds: items stranded on a failed server get the cover re-run
  // over their surviving replicas — replication means a dead bundle costs
  // extra transactions, not the keys. An epoch bounce strands the same way,
  // but first the round refreshes the ring (the controller published the
  // newer epoch before any server started bouncing) and re-derives the
  // stranded items' replica lists against it.
  for (std::uint32_t round = 0; round < config_.failure.max_recover_rounds;
       ++round) {
    if (out_of_time()) break;
    if (stale_view) {
      stale_view = false;
      ++result.epoch_replans;
      op_epoch = view_.epoch();
      for (std::size_t i = 0; i < m; ++i)
        if (!satisfied[i]) locations[i] = view_.replicas(items[i]);
    }
    CoverInstance recover;
    std::vector<std::size_t> pool;
    for (std::size_t i = 0; i < m; ++i) {
      if (satisfied[i] || !stranded[i]) continue;
      std::vector<ServerId> live;
      for (const ServerId s : locations[i])
        if (!unreachable(s)) live.push_back(s);
      if (live.empty()) continue;
      pool.push_back(i);
      recover.candidates.push_back(std::move(live));
    }
    if (pool.empty()) break;
    ++exchange_.stats().recover_rounds;
    ++waves;
    obs::SpanScope wave_span("wave", "kv_client");
    wave_span.note("kind", "recover");
    wave_span.arg("round", static_cast<std::int64_t>(round + 1));
    const CoverResult replan = greedy_cover(recover);
    std::unordered_map<ServerId, std::vector<std::size_t>> bundles;
    for (std::size_t j = 0; j < pool.size(); ++j) {
      assignment[pool[j]] = replan.assignment[j];
      bundles[replan.assignment[j]].push_back(pool[j]);
    }
    for (const ServerId s : replan.servers_used) {
      if (out_of_time()) break;
      bundled_get(s, bundles.at(s), nullptr, result.recover_transactions);
    }
  }

  // Round 2: bundled fallbacks for evicted replicas — the distinguished
  // copy by default, or the first reachable replica when servers failed.
  std::unordered_map<ServerId, std::vector<std::size_t>> fallback;
  for (std::size_t i = 0; i < m; ++i) {
    if (satisfied[i]) continue;
    // A miss on a *reachable* distinguished server is authoritative — the
    // key does not exist; no fallback can change that. (A stranded item
    // never got an answer, so its miss proves nothing.)
    if (!stranded[i] && assignment[i] == locations[i][0]) continue;
    for (const ServerId s : locations[i])
      if (s != assignment[i] && !unreachable(s)) {
        fallback[s].push_back(i);
        break;
      }
  }

  std::vector<ServerId> fallback_servers;
  fallback_servers.reserve(fallback.size());
  for (const auto& [s, idxs] : fallback) fallback_servers.push_back(s);
  std::sort(fallback_servers.begin(), fallback_servers.end());

  if (!fallback_servers.empty()) {
    ++waves;
    obs::SpanScope wave_span("wave", "kv_client");
    wave_span.note("kind", "round2");
    wave_span.arg("transactions",
                  static_cast<std::int64_t>(fallback_servers.size()));
    for (const ServerId s : fallback_servers) {
      if (out_of_time()) break;
      const auto& idxs = fallback.at(s);
      std::vector<std::string> bundle;
      bundle.reserve(idxs.size());
      for (const std::size_t i : idxs) bundle.push_back(items[i]);
      request_.clear();
      kv::encode_get(bundle, /*with_versions=*/false, request_);
      tag_epoch(op_epoch);
      ++result.round2_transactions;
      contacted.insert(s);
      bool stale = false;
      const auto values = exchange_values(s, elapsed, &stale);
      if (!values) {
        // A bounce this late stays unrecovered (recover rounds are spent);
        // the keys report missing rather than risk an unbounded loop.
        if (stale) continue;
        failed.insert(s);
        view_.mark_down(s, op_started);
        ++result.servers_marked_down;
        continue;
      }
      for (const Value& v : *values) {
        result.values[v.key] = v.data;
        const std::size_t i = index_of.at(v.key);
        satisfied[i] = true;
        // Re-install the replica round 1 expected (write-back rule) —
        // best-effort: a lost write-back only costs a future round 2.
        if (config_.write_back_misses && !unreachable(assignment[i])) {
          request_.clear();
          kv::encode_set(v.key, v.data, /*pin=*/false, request_);
          tag_epoch(op_epoch);
          std::string ack;
          transport_.roundtrip(assignment[i], request_, ack);
        }
      }
    }
  }

  for (std::size_t i = 0; i < m; ++i)
    if (!satisfied[i]) result.missing.push_back(items[i]);
  result.retries =
      static_cast<std::uint32_t>(exchange_.stats().retries - before.retries);
  result.hedged_sends = static_cast<std::uint32_t>(
      exchange_.stats().hedged_sends - before.hedged_sends);
  req_span.arg("items", static_cast<std::int64_t>(m));
  req_span.arg("transactions",
               static_cast<std::int64_t>(result.transactions()));
  req_span.arg("retries", static_cast<std::int64_t>(result.retries));
  if (obs::SlowLog* slow = obs::SlowLog::current()) {
    obs::SlowRequest sr;
    sr.trace_id = req_span.context().trace_id;
    sr.cost = static_cast<std::uint64_t>(elapsed * 1e6);
    sr.items = static_cast<std::uint32_t>(m);
    sr.transactions = result.transactions();
    sr.waves = waves;
    sr.hitchhikes = result.hitchhiker_keys;
    sr.retries = result.retries;
    sr.servers = static_cast<std::uint32_t>(contacted.size());
    sr.deadline_missed = result.deadline_missed;
    // The epoch the cover was (last) planned against: a slow entry stamped
    // with a migration's epoch is the correlation the flight recorder
    // surfaces.
    sr.epoch = op_epoch;
    slow->record(sr);
  }
  return result;
}

bool KvClusterClient::remove(std::string_view key) {
  view_.tick();
  bool existed = false;
  double elapsed = 0.0;
  // One bounded replan on a WRONG_EPOCH bounce (deletes are idempotent).
  for (int plan = 0; plan < 2; ++plan) {
    const std::uint64_t epoch = view_.epoch();
    const std::vector<ServerId> servers = view_.replicas(key);
    bool bounced = false;
    // Distinguished copy last: a concurrent reader that misses a replica
    // falls back to the distinguished copy, so it must outlive the others.
    for (std::size_t r = servers.size(); r-- > 0;) {
      request_.clear();
      kv::encode_delete(key, request_);
      tag_epoch(epoch);
      if (!exchange(servers[r], elapsed)) continue;
      if (kv::parse_wrong_epoch(response_).has_value()) bounced = true;
      if (r == 0) existed = kv::parse_simple(response_) == "DELETED";
    }
    if (!bounced) break;
  }
  return existed;
}

}  // namespace rnb::dserve
